#include "opt/milp.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <utility>

#include "obs/obs.hpp"
#include "opt/cuts.hpp"
#include "opt/presolve.hpp"
#include "support/executor.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace mlsi::opt {

std::string_view to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnknown: return "unknown";
  }
  return "?";
}

double Solution::value(Var v) const {
  if (!has_solution() || !v.valid() ||
      static_cast<std::size_t>(v.id) >= values.size()) {
    return 0.0;
  }
  return values[static_cast<std::size_t>(v.id)];
}

int Solution::value_int(Var v) const {
  return static_cast<int>(std::lround(value(v)));
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Branch & bound search state over a linearized model.
///
/// Concurrency contract (the jobs > 1 path): `model_` and `lp_` are frozen
/// before workers start; every worker owns a Searcher with a private
/// LpProblem copy whose bounds it mutates freely. Shared state is exactly
/// the incumbent (atomic objective for pruning, mutex-guarded vector for
/// publication), the global node counter, and the truncated flag — the same
/// shape as synth::solve_portfolio's shared-incumbent race.
class BranchAndBound {
 public:
  BranchAndBound(Model model, const MilpParams& params, int original_vars)
      : model_(std::move(model)),
        params_(params),
        original_vars_(original_vars) {
    build_lp();
  }

  Solution run();

 private:
  /// One frontier entry: a subproblem's structural bounds plus the basis of
  /// its parent's LP relaxation. The basis is a value (not a pointer): the
  /// subtree handoff transfers ownership, so the child's dual warm start
  /// never depends on the parent's stack frame being alive.
  struct Node {
    std::vector<double> lb, ub;
    LpBasis basis;
    int depth = 0;
  };

  /// Per-worker DFS searcher over a private copy of the root LP.
  class Searcher {
   public:
    explicit Searcher(BranchAndBound* owner) : owner_(owner), lp_(owner->lp_) {}

    /// Explores the subtree rooted at \p node. When \p spill is null the
    /// subtree is exhausted recursively (DFS); otherwise the node is
    /// evaluated once and its children are pushed onto \p spill (the BFS
    /// frontier-expansion step). Returns false when a global limit tripped.
    bool run_node(const Node& node, std::deque<Node>* spill);

    SolveStats local;  ///< LP stats merged into the owner after the drain

   private:
    bool explore(const LpBasis* parent_basis, int depth,
                 std::deque<Node>* spill);

    BranchAndBound* owner_;
    LpProblem lp_;  // private copy; bounds mutated in place during the dive
  };

  void build_lp();
  /// Solves \p lp, accumulating LP stats into \p into (caller owns the
  /// race: workers pass their Searcher-local stats).
  LpResult solve_lp_on(const LpProblem& lp, const LpBasis* warm_basis,
                       SolveStats& into) const;
  /// Root relaxation + Gomory cut rounds. Returns the final root LpResult;
  /// `lp_` has every applied cut row appended.
  LpResult solve_root();
  /// Branching variable; -1 when the LP point is integral. Tie-break order
  /// (deterministic): highest branch_priority class first, then the most
  /// fractional value (beyond kBranchTieTol), then the lowest variable
  /// index (implicit in the ascending scan keeping the first best).
  int pick_branch_var(const std::vector<double>& x) const;
  /// Thread-safe incumbent publication: verify against the full model,
  /// then take the incumbent mutex and improve the atomic bound.
  void offer_incumbent(const std::vector<double>& x, double objective_min);
  /// Pushes the (up to two) children of a branching decision, nearest
  /// integer first so FIFO draining preserves the serial dive order.
  void push_children(std::deque<Node>& frontier, const std::vector<double>& lb,
                     const std::vector<double>& ub, const LpResult& lp, int j,
                     int depth) const;
  /// Relative incumbent-vs-root-bound gap in [0, inf); 0 when proven.
  [[nodiscard]] double current_gap() const;
  void record_gap_series() const;
  void finalize(Solution& out, const Timer& timer);

  Model model_;  // read-only once the search starts (workers share it)
  const MilpParams& params_;
  int original_vars_;
  int jobs_ = 1;

  LpProblem lp_;           // root LP incl. cut rows (template for searchers)
  double obj_sign_ = 1.0;  // +1 minimize, -1 maximize (LP always minimizes)

  std::atomic<bool> truncated_{false};
  std::atomic<long> node_count_{0};
  std::atomic<double> best_obj_min_{kInf};  // minimize convention
  std::atomic<bool> have_incumbent_{false};
  std::mutex incumbent_mutex_;  // guards best_x_
  std::vector<double> best_x_;
  bool have_root_bound_ = false;

  SolveStats stats_;        // root solve + merged worker stats
  std::mutex stats_mutex_;  // guards merges after the parallel drain
};

void BranchAndBound::build_lp() {
  MLSI_ASSERT(model_.is_linear(), "build_lp requires a linearized model");
  const int n = model_.num_vars();
  lp_.num_vars = n;
  lp_.lb.resize(static_cast<std::size_t>(n));
  lp_.ub.resize(static_cast<std::size_t>(n));
  lp_.cost.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const VarInfo& v = model_.var(Var{j});
    // Integer bounds can be tightened to the enclosed integer range.
    double lb = v.lb;
    double ub = v.ub;
    if (v.is_integral()) {
      lb = std::ceil(lb - 1e-9);
      ub = std::floor(ub + 1e-9);
    }
    lp_.lb[static_cast<std::size_t>(j)] = lb;
    lp_.ub[static_cast<std::size_t>(j)] = ub;
  }

  obj_sign_ = model_.minimize() ? 1.0 : -1.0;
  LinExpr obj = model_.objective().lin();
  obj.compress();
  lp_.cost_constant = obj_sign_ * obj.constant();
  for (const auto& [id, c] : obj.terms()) {
    lp_.cost[static_cast<std::size_t>(id)] = obj_sign_ * c;
  }

  lp_.rows.reserve(model_.constraints().size());
  for (const Constraint& c : model_.constraints()) {
    LinExpr e = c.expr.lin();
    e.compress();
    LpRow row;
    row.terms = e.terms();
    row.lo = c.lo - e.constant();
    row.hi = c.hi - e.constant();
    lp_.rows.push_back(std::move(row));
  }
}

LpResult BranchAndBound::solve_lp_on(const LpProblem& lp,
                                     const LpBasis* warm_basis,
                                     SolveStats& into) const {
  LpParams lp_params = params_.lp;
  lp_params.deadline = params_.deadline;
  lp_params.stop = params_.stop;
  lp_params.warm_basis = warm_basis;
  LpResult res = solve_lp(lp, lp_params);
  into.lp_iterations += res.iterations;
  into.lp_dual_iterations += res.dual_iterations;
  into.lp_factorizations += res.factorizations;
  if (res.used_warm_start) {
    ++into.warm_starts;
  } else {
    ++into.cold_starts;
  }
  return res;
}

int BranchAndBound::pick_branch_var(const std::vector<double>& x) const {
  // Fractionality differences below this are ties: two candidates this
  // close are equally attractive, and the lower index must win so the
  // search tree does not depend on floating-point noise in the relaxation.
  constexpr double kBranchTieTol = 1e-9;
  int best = -1;
  int best_priority = std::numeric_limits<int>::min();
  double best_frac_dist = params_.int_tol;
  for (int j = 0; j < model_.num_vars(); ++j) {
    const VarInfo& info = model_.var(Var{j});
    if (!info.is_integral()) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);  // distance to integer
    if (dist <= params_.int_tol) continue;
    // 1. highest branch_priority class; 2. most fractional (strictly, by
    // more than kBranchTieTol); 3. lowest index — the ascending scan keeps
    // the incumbent candidate on ties.
    if (best < 0 || info.branch_priority > best_priority ||
        (info.branch_priority == best_priority &&
         dist > best_frac_dist + kBranchTieTol)) {
      best_priority = info.branch_priority;
      best_frac_dist = dist;
      best = j;
    }
  }
  return best;
}

void BranchAndBound::offer_incumbent(const std::vector<double>& x,
                                     double objective_min) {
  // Cheap monotone reject without the lock (the bound only ever decreases).
  if (objective_min >= best_obj_min_.load(std::memory_order_relaxed)) return;
  // Round integral vars exactly and re-verify against the full model: a
  // drifting LP must never smuggle in an infeasible incumbent. The model is
  // read-only here, so verification runs outside the lock.
  std::vector<double> rounded = x;
  for (int j = 0; j < model_.num_vars(); ++j) {
    if (model_.var(Var{j}).is_integral()) {
      rounded[static_cast<std::size_t>(j)] =
          std::nearbyint(rounded[static_cast<std::size_t>(j)]);
    }
  }
  if (!model_.is_feasible(rounded, 1e-5)) {
    log_warn("milp: rejected a numerically infeasible incumbent");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(incumbent_mutex_);
    // Re-check under the lock: another worker may have published a better
    // incumbent since the relaxed probe above.
    if (objective_min >= best_obj_min_.load(std::memory_order_relaxed)) {
      return;
    }
    best_obj_min_.store(objective_min, std::memory_order_relaxed);
    best_x_ = std::move(rounded);
    have_incumbent_.store(true, std::memory_order_relaxed);
  }
  if (params_.log) {
    log_info("milp: incumbent ", obj_sign_ * objective_min, " after ",
             node_count_.load(std::memory_order_relaxed), " nodes");
  }
  if (obs::search_log_enabled()) {
    obs::search_event(
        "incumbent",
        {{"engine", json::Value{"milp"}},
         {"obj", json::Value{obj_sign_ * objective_min}},
         {"nodes",
          json::Value{node_count_.load(std::memory_order_relaxed)}},
         {"gap", json::Value{current_gap()}}});
  }
  if (obs::metrics_enabled()) {
    obs::metrics().counter("milp.incumbents").add();
    obs::metrics().series("search.incumbent").record(obj_sign_ * objective_min);
    record_gap_series();
  }
}

double BranchAndBound::current_gap() const {
  if (!have_incumbent_.load(std::memory_order_relaxed)) return kInf;
  if (!have_root_bound_) return kInf;
  // Both in minimize convention; the search never tightens the global bound
  // below the root relaxation, so the root bound is the honest denominator
  // until the search completes (run() records the final 0).
  const double best = best_obj_min_.load(std::memory_order_relaxed);
  const double bound_min = obj_sign_ * stats_.root_bound;
  const double gap = best - bound_min;
  return std::max(0.0, gap / std::max(1.0, std::fabs(best)));
}

void BranchAndBound::record_gap_series() const {
  obs::metrics().series("search.gap").record(current_gap());
}

void BranchAndBound::push_children(std::deque<Node>& frontier,
                                   const std::vector<double>& lb,
                                   const std::vector<double>& ub,
                                   const LpResult& lp, int j,
                                   int depth) const {
  const auto idx = static_cast<std::size_t>(j);
  const double v = lp.x[idx];
  const double fl = std::floor(v);
  const bool down_first = (v - fl) <= 0.5;
  for (int child = 0; child < 2; ++child) {
    const bool down = (child == 0) == down_first;
    Node node;
    node.lb = lb;
    node.ub = ub;
    node.basis = lp.basis;
    node.depth = depth;
    if (down) {
      node.ub[idx] = fl;
    } else {
      node.lb[idx] = fl + 1.0;
    }
    if (node.lb[idx] <= node.ub[idx]) frontier.push_back(std::move(node));
  }
}

bool BranchAndBound::Searcher::run_node(const Node& node,
                                        std::deque<Node>* spill) {
  lp_.lb = node.lb;
  lp_.ub = node.ub;
  return explore(&node.basis, node.depth, spill);
}

bool BranchAndBound::Searcher::explore(const LpBasis* parent_basis, int depth,
                                       std::deque<Node>* spill) {
  BranchAndBound& bb = *owner_;
  if (bb.params_.deadline.expired() || bb.params_.stop.stop_requested() ||
      bb.node_count_.load(std::memory_order_relaxed) >= bb.params_.max_nodes) {
    bb.truncated_.store(true, std::memory_order_relaxed);
    return false;
  }
  const long node =
      bb.node_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (bb.params_.log && node % 1000 == 0) {
    log_info("milp: ", node, " nodes, incumbent ",
             bb.have_incumbent_.load(std::memory_order_relaxed)
                 ? bb.obj_sign_ *
                       bb.best_obj_min_.load(std::memory_order_relaxed)
                 : 0.0);
  }
  if (obs::metrics_enabled()) {
    static obs::Histogram& depth_hist = obs::metrics().histogram(
        "milp.node_depth", {1, 2, 4, 8, 16, 24, 32, 48, 64, 96});
    depth_hist.observe(static_cast<double>(depth));
    obs::metrics().counter("milp.nodes").add();
  }

  const LpResult lp = bb.solve_lp_on(lp_, parent_basis, local);
  // Per-node events are the verbose tail of the search log; every site
  // guards explicitly so the field lists are never built when it is off.
  if (obs::search_log_enabled()) {
    obs::search_event(
        "node", {{"node", json::Value{node}},
                 {"depth", json::Value{depth}},
                 {"warm", json::Value{lp.used_warm_start}},
                 {"bound", lp.status == LpStatus::kOptimal
                               ? json::Value{bb.obj_sign_ * lp.objective}
                               : json::Value{}}});
  }
  if (lp.status == LpStatus::kInfeasible) {
    if (obs::search_log_enabled()) {
      obs::search_event("prune", {{"node", json::Value{node}},
                                  {"reason", json::Value{"infeasible"}}});
    }
    return true;  // prune
  }
  if (lp.status == LpStatus::kIterLimit) {
    bb.truncated_.store(true, std::memory_order_relaxed);
    return false;
  }

  if (lp.objective >= bb.best_obj_min_.load(std::memory_order_relaxed) -
                          bb.params_.abs_gap) {
    if (obs::search_log_enabled()) {
      obs::search_event("prune", {{"node", json::Value{node}},
                                  {"reason", json::Value{"bound"}}});
    }
    return true;  // bound prune
  }

  const int j = bb.pick_branch_var(lp.x);
  if (j < 0) {
    bb.offer_incumbent(lp.x, lp.objective);
    return true;
  }
  if (obs::search_log_enabled()) {
    obs::search_event(
        "branch",
        {{"node", json::Value{node}},
         {"var", json::Value{j}},
         {"value", json::Value{lp.x[static_cast<std::size_t>(j)]}}});
  }

  if (spill != nullptr) {
    // Frontier expansion: hand both subtrees (with this LP's basis) back to
    // the caller instead of diving.
    bb.push_children(*spill, lp_.lb, lp_.ub, lp, j, depth + 1);
    return true;
  }

  const double v = lp.x[static_cast<std::size_t>(j)];
  const double fl = std::floor(v);
  const auto idx = static_cast<std::size_t>(j);
  const double saved_lb = lp_.lb[idx];
  const double saved_ub = lp_.ub[idx];

  // Nearest-integer child first: dives toward an early incumbent.
  const bool down_first = (v - fl) <= 0.5;
  for (int child = 0; child < 2; ++child) {
    const bool down = (child == 0) == down_first;
    if (down) {
      lp_.lb[idx] = saved_lb;
      lp_.ub[idx] = fl;
    } else {
      lp_.lb[idx] = fl + 1.0;
      lp_.ub[idx] = saved_ub;
    }
    // Each child differs from this node by one bound, so the parent's
    // optimal basis is dual feasible for it: the revised simplex re-enters
    // through the dual method and typically needs only a few pivots.
    const bool child_feasible_bounds = lp_.lb[idx] <= lp_.ub[idx];
    if (child_feasible_bounds && !explore(&lp.basis, depth + 1, nullptr)) {
      lp_.lb[idx] = saved_lb;
      lp_.ub[idx] = saved_ub;
      return false;
    }
  }
  lp_.lb[idx] = saved_lb;
  lp_.ub[idx] = saved_ub;
  return true;
}

LpResult BranchAndBound::solve_root() {
  // The root counts as node 1 (cut-round re-solves stay part of it).
  node_count_.store(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    static obs::Histogram& depth_hist = obs::metrics().histogram(
        "milp.node_depth", {1, 2, 4, 8, 16, 24, 32, 48, 64, 96});
    depth_hist.observe(0.0);
    obs::metrics().counter("milp.nodes").add();
  }
  LpResult root = solve_lp_on(lp_, nullptr, stats_);
  if (obs::search_log_enabled()) {
    obs::search_event(
        "node", {{"node", json::Value{1L}},
                 {"depth", json::Value{0}},
                 {"warm", json::Value{false}},
                 {"bound", root.status == LpStatus::kOptimal
                               ? json::Value{obj_sign_ * root.objective}
                               : json::Value{}}});
  }
  if (root.status != LpStatus::kOptimal) return root;

  stats_.root_bound_precut = obj_sign_ * root.objective;
  if (obs::metrics_enabled()) {
    obs::metrics()
        .gauge("milp.root_bound_precut")
        .set(stats_.root_bound_precut);
  }

  if (params_.cut_rounds > 0) {
    std::vector<char> is_integral(static_cast<std::size_t>(model_.num_vars()),
                                  0);
    for (int j = 0; j < model_.num_vars(); ++j) {
      is_integral[static_cast<std::size_t>(j)] =
          model_.var(Var{j}).is_integral() ? 1 : 0;
    }
    for (int round = 0; round < params_.cut_rounds; ++round) {
      if (params_.deadline.expired() || params_.stop.stop_requested()) break;
      if (pick_branch_var(root.x) < 0) break;  // already integral
      CutStats cs;
      std::vector<LpRow> cuts =
          generate_gomory_cuts(lp_, root, is_integral, params_.cuts, &cs);
      stats_.cuts_generated += cs.generated;
      stats_.cuts_dropped += cs.dropped;
      if (cuts.empty()) break;

      // Append the cut rows and extend the basis: every new cut slack
      // enters basic (at the current vertex's activity, typically violating
      // its new bound), so the re-solve is a plain dual warm start.
      const std::size_t old_rows = lp_.rows.size();
      LpBasis warm = root.basis;
      for (std::size_t k = 0; k < cuts.size(); ++k) {
        warm.basic.push_back(lp_.num_vars + static_cast<int>(old_rows + k));
        warm.status.push_back(ColStatus::kBasic);
        lp_.rows.push_back(std::move(cuts[k]));
      }
      LpResult next = solve_lp_on(lp_, &warm, stats_);
      if (next.status != LpStatus::kOptimal) {
        // Numerics or budget trouble: rewind this round and search with
        // what we already have. (Valid cuts cannot make the LP infeasible
        // unless the MILP itself is infeasible — in which case the tree
        // search proves it anyway.)
        lp_.rows.resize(old_rows);
        stats_.cuts_dropped += static_cast<long>(cuts.size());
        break;
      }
      stats_.cuts_applied += static_cast<long>(cuts.size());
      root = std::move(next);
      if (params_.log) {
        log_info("milp: cut round ", round + 1, ": +", cuts.size(),
                 " cuts, root bound ", obj_sign_ * root.objective);
      }
    }
  }

  if (obs::metrics_enabled()) {
    static obs::Counter& generated = obs::metrics().counter(
        "milp.cuts_generated");
    static obs::Counter& applied = obs::metrics().counter("milp.cuts_applied");
    static obs::Counter& dropped = obs::metrics().counter("milp.cuts_dropped");
    generated.add(stats_.cuts_generated);
    applied.add(stats_.cuts_applied);
    dropped.add(stats_.cuts_dropped);
    obs::metrics()
        .gauge("milp.root_bound_postcut")
        .set(obj_sign_ * root.objective);
  }
  return root;
}

void BranchAndBound::finalize(Solution& out, const Timer& timer) {
  stats_.runtime_s = timer.seconds();
  stats_.nodes = node_count_.load(std::memory_order_relaxed);
  out.stats = stats_;
  const bool truncated = truncated_.load(std::memory_order_relaxed);
  if (have_incumbent_.load(std::memory_order_relaxed)) {
    out.status = truncated ? MilpStatus::kFeasible : MilpStatus::kOptimal;
    out.objective = obj_sign_ * best_obj_min_.load(std::memory_order_relaxed);
    // Report only the caller's variables, not the linearization auxiliaries.
    best_x_.resize(static_cast<std::size_t>(original_vars_));
    out.values = std::move(best_x_);
  } else {
    out.status = truncated ? MilpStatus::kUnknown : MilpStatus::kInfeasible;
  }
  // An exhausted tree is a proof: the gap timeline closes at exactly 0.
  if (out.status == MilpStatus::kOptimal && obs::metrics_enabled()) {
    obs::metrics().series("search.gap").record(0.0);
  }
  if (obs::search_log_enabled()) {
    obs::search_event("milp_done",
                      {{"status", json::Value{to_string(out.status)}},
                       {"nodes", json::Value{stats_.nodes}},
                       {"cuts", json::Value{stats_.cuts_applied}},
                       {"jobs", json::Value{jobs_}},
                       {"warm_starts", json::Value{stats_.warm_starts}},
                       {"cold_starts", json::Value{stats_.cold_starts}},
                       {"obj", out.has_solution() ? json::Value{out.objective}
                                                  : json::Value{}}});
  }
}

Solution BranchAndBound::run() {
  Timer timer;
  Solution out;
  jobs_ = params_.jobs == 1 ? 1
                            : support::ThreadPool::resolve_jobs(params_.jobs);

  const LpResult root = solve_root();
  if (root.status == LpStatus::kInfeasible) {
    finalize(out, timer);
    return out;
  }
  if (root.status == LpStatus::kIterLimit) {
    truncated_.store(true, std::memory_order_relaxed);
    finalize(out, timer);
    return out;
  }
  stats_.root_bound = obj_sign_ * root.objective;
  have_root_bound_ = true;

  std::deque<Node> frontier;
  const int j0 = pick_branch_var(root.x);
  if (j0 < 0) {
    offer_incumbent(root.x, root.objective);
    finalize(out, timer);
    return out;
  }
  push_children(frontier, lp_.lb, lp_.ub, root, j0, 1);

  if (jobs_ <= 1) {
    // Serial DFS: FIFO over the two root children preserves the classic
    // nearest-integer-first dive order.
    Searcher searcher(this);
    while (!frontier.empty()) {
      const Node node = std::move(frontier.front());
      frontier.pop_front();
      if (!searcher.run_node(node, nullptr)) break;
    }
    stats_.lp_iterations += searcher.local.lp_iterations;
    stats_.lp_dual_iterations += searcher.local.lp_dual_iterations;
    stats_.lp_factorizations += searcher.local.lp_factorizations;
    stats_.warm_starts += searcher.local.warm_starts;
    stats_.cold_starts += searcher.local.cold_starts;
    finalize(out, timer);
    return out;
  }

  // Parallel drain. Phase 1: breadth-first expansion (still serial) until
  // the frontier holds enough independent subtrees to feed every worker —
  // each entry carries its parent's basis, so workers dual-warm-start their
  // first LP exactly like a serial dive would.
  Searcher expander(this);
  const std::size_t target =
      static_cast<std::size_t>(std::max(4 * jobs_, 8));
  while (!frontier.empty() && frontier.size() < target) {
    const Node node = std::move(frontier.front());
    frontier.pop_front();
    if (!expander.run_node(node, &frontier)) break;
  }

  // Phase 2: workers drain the frontier, each running an exhaustive DFS per
  // subtree. The incumbent bound crosses workers through the atomic min, so
  // any worker's solution prunes every other's dive; StopToken/deadline
  // trips unwind all workers at their next node check.
  {
    std::mutex frontier_mutex;
    support::ThreadPool pool(jobs_);
    for (int w = 0; w < jobs_; ++w) {
      pool.submit([this, &frontier, &frontier_mutex] {
        Searcher searcher(this);
        while (!truncated_.load(std::memory_order_relaxed)) {
          Node node;
          {
            std::lock_guard<std::mutex> lock(frontier_mutex);
            if (frontier.empty()) break;
            node = std::move(frontier.front());
            frontier.pop_front();
          }
          if (!searcher.run_node(node, nullptr)) break;
        }
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.lp_iterations += searcher.local.lp_iterations;
        stats_.lp_dual_iterations += searcher.local.lp_dual_iterations;
        stats_.lp_factorizations += searcher.local.lp_factorizations;
        stats_.warm_starts += searcher.local.warm_starts;
        stats_.cold_starts += searcher.local.cold_starts;
      });
    }
    pool.wait_idle();
  }  // joins the workers
  stats_.lp_iterations += expander.local.lp_iterations;
  stats_.lp_dual_iterations += expander.local.lp_dual_iterations;
  stats_.lp_factorizations += expander.local.lp_factorizations;
  stats_.warm_starts += expander.local.warm_starts;
  stats_.cold_starts += expander.local.cold_starts;
  finalize(out, timer);
  return out;
}

}  // namespace

Solution solve_milp(const Model& model, const MilpParams& params) {
  obs::TraceSpan span("milp.solve");
  Model work = model;  // keep the caller's model untouched
  const int original_vars = model.num_vars();
  const int aux = linearize_products(work);
  if (params.log && aux > 0) {
    log_info("milp: linearized ", aux, " binary products");
  }
  if (params.presolve) {
    obs::TraceSpan presolve_span("milp.presolve");
    const PresolveStats ps = opt::presolve(work);
    if (params.log) {
      log_info("milp: presolve tightened ", ps.bound_tightenings,
               " bounds, removed ", ps.rows_removed, " rows, fixed ",
               ps.vars_fixed, " vars");
    }
    if (ps.proven_infeasible) {
      Solution out;
      out.status = MilpStatus::kInfeasible;
      return out;
    }
  }
  BranchAndBound search(std::move(work), params, original_vars);
  return search.run();
}

}  // namespace mlsi::opt
