#include "opt/milp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "opt/presolve.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace mlsi::opt {

std::string_view to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnknown: return "unknown";
  }
  return "?";
}

double Solution::value(Var v) const {
  if (!has_solution() || !v.valid() ||
      static_cast<std::size_t>(v.id) >= values.size()) {
    return 0.0;
  }
  return values[static_cast<std::size_t>(v.id)];
}

int Solution::value_int(Var v) const {
  return static_cast<int>(std::lround(value(v)));
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Branch & bound search state over a linearized model.
class BranchAndBound {
 public:
  BranchAndBound(Model model, const MilpParams& params, int original_vars)
      : model_(std::move(model)),
        params_(params),
        original_vars_(original_vars) {
    build_lp();
  }

  Solution run();

 private:
  void build_lp();
  LpResult solve_relaxation(const LpBasis* warm_basis);
  /// Branching variable; -1 when the LP point is integral. Tie-break order
  /// (deterministic): highest branch_priority class first, then the most
  /// fractional value (beyond kBranchTieTol), then the lowest variable
  /// index (implicit in the ascending scan keeping the first best).
  int pick_branch_var(const std::vector<double>& x) const;
  void accept_incumbent(const std::vector<double>& x, double objective);
  /// Recursive DFS; returns false when a global limit tripped. Children
  /// warm-start their LPs from \p parent_basis. \p depth is the root-relative
  /// tree depth (root = 0), recorded in the milp.node_depth histogram.
  bool explore(const LpBasis* parent_basis, int depth);
  /// Relative incumbent-vs-root-bound gap in [0, inf); 0 when proven.
  [[nodiscard]] double current_gap() const;
  void record_gap_series() const;

  Model model_;
  const MilpParams& params_;
  int original_vars_;

  LpProblem lp_;           // bounds mutated in place during the search
  double obj_sign_ = 1.0;  // +1 minimize, -1 maximize (LP always minimizes)

  bool truncated_ = false;
  bool have_root_bound_ = false;
  bool have_incumbent_ = false;
  double best_obj_min_ = kInf;  // in minimize convention
  std::vector<double> best_x_;

  SolveStats stats_;
};

void BranchAndBound::build_lp() {
  MLSI_ASSERT(model_.is_linear(), "build_lp requires a linearized model");
  const int n = model_.num_vars();
  lp_.num_vars = n;
  lp_.lb.resize(static_cast<std::size_t>(n));
  lp_.ub.resize(static_cast<std::size_t>(n));
  lp_.cost.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const VarInfo& v = model_.var(Var{j});
    // Integer bounds can be tightened to the enclosed integer range.
    double lb = v.lb;
    double ub = v.ub;
    if (v.is_integral()) {
      lb = std::ceil(lb - 1e-9);
      ub = std::floor(ub + 1e-9);
    }
    lp_.lb[static_cast<std::size_t>(j)] = lb;
    lp_.ub[static_cast<std::size_t>(j)] = ub;
  }

  obj_sign_ = model_.minimize() ? 1.0 : -1.0;
  LinExpr obj = model_.objective().lin();
  obj.compress();
  lp_.cost_constant = obj_sign_ * obj.constant();
  for (const auto& [id, c] : obj.terms()) {
    lp_.cost[static_cast<std::size_t>(id)] = obj_sign_ * c;
  }

  lp_.rows.reserve(model_.constraints().size());
  for (const Constraint& c : model_.constraints()) {
    LinExpr e = c.expr.lin();
    e.compress();
    LpRow row;
    row.terms = e.terms();
    row.lo = c.lo - e.constant();
    row.hi = c.hi - e.constant();
    lp_.rows.push_back(std::move(row));
  }
}

LpResult BranchAndBound::solve_relaxation(const LpBasis* warm_basis) {
  LpParams lp_params = params_.lp;
  lp_params.deadline = params_.deadline;
  lp_params.stop = params_.stop;
  lp_params.warm_basis = warm_basis;
  LpResult res = solve_lp(lp_, lp_params);
  stats_.lp_iterations += res.iterations;
  stats_.lp_dual_iterations += res.dual_iterations;
  stats_.lp_factorizations += res.factorizations;
  if (res.used_warm_start) {
    ++stats_.warm_starts;
  } else {
    ++stats_.cold_starts;
  }
  return res;
}

int BranchAndBound::pick_branch_var(const std::vector<double>& x) const {
  // Fractionality differences below this are ties: two candidates this
  // close are equally attractive, and the lower index must win so the
  // search tree does not depend on floating-point noise in the relaxation.
  constexpr double kBranchTieTol = 1e-9;
  int best = -1;
  int best_priority = std::numeric_limits<int>::min();
  double best_frac_dist = params_.int_tol;
  for (int j = 0; j < model_.num_vars(); ++j) {
    const VarInfo& info = model_.var(Var{j});
    if (!info.is_integral()) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);  // distance to integer
    if (dist <= params_.int_tol) continue;
    // 1. highest branch_priority class; 2. most fractional (strictly, by
    // more than kBranchTieTol); 3. lowest index — the ascending scan keeps
    // the incumbent candidate on ties.
    if (best < 0 || info.branch_priority > best_priority ||
        (info.branch_priority == best_priority &&
         dist > best_frac_dist + kBranchTieTol)) {
      best_priority = info.branch_priority;
      best_frac_dist = dist;
      best = j;
    }
  }
  return best;
}

void BranchAndBound::accept_incumbent(const std::vector<double>& x,
                                      double objective_min) {
  // Round integral vars exactly and re-verify against the full model: a
  // drifting LP must never smuggle in an infeasible incumbent.
  std::vector<double> rounded = x;
  for (int j = 0; j < model_.num_vars(); ++j) {
    if (model_.var(Var{j}).is_integral()) {
      rounded[static_cast<std::size_t>(j)] =
          std::nearbyint(rounded[static_cast<std::size_t>(j)]);
    }
  }
  if (!model_.is_feasible(rounded, 1e-5)) {
    log_warn("milp: rejected a numerically infeasible incumbent");
    return;
  }
  if (objective_min < best_obj_min_ - 0.0) {
    best_obj_min_ = objective_min;
    best_x_ = std::move(rounded);
    have_incumbent_ = true;
    if (params_.log) {
      log_info("milp: incumbent ", obj_sign_ * best_obj_min_, " after ",
               stats_.nodes, " nodes");
    }
    if (obs::search_log_enabled()) {
      obs::search_event("incumbent",
                        {{"engine", json::Value{"milp"}},
                         {"obj", json::Value{obj_sign_ * best_obj_min_}},
                         {"nodes", json::Value{stats_.nodes}},
                         {"gap", json::Value{current_gap()}}});
    }
    if (obs::metrics_enabled()) {
      obs::metrics().counter("milp.incumbents").add();
      obs::metrics()
          .series("search.incumbent")
          .record(obj_sign_ * best_obj_min_);
      record_gap_series();
    }
  }
}

double BranchAndBound::current_gap() const {
  if (!have_incumbent_) return kInf;
  if (!have_root_bound_) return kInf;
  // Both in minimize convention; the DFS never tightens the global bound
  // below the root relaxation, so the root bound is the honest denominator
  // until the search completes (run() records the final 0).
  const double bound_min = obj_sign_ * stats_.root_bound;
  const double gap = best_obj_min_ - bound_min;
  return std::max(0.0, gap / std::max(1.0, std::fabs(best_obj_min_)));
}

void BranchAndBound::record_gap_series() const {
  obs::metrics().series("search.gap").record(current_gap());
}

bool BranchAndBound::explore(const LpBasis* parent_basis, int depth) {
  if (params_.deadline.expired() || params_.stop.stop_requested() ||
      stats_.nodes >= params_.max_nodes) {
    truncated_ = true;
    return false;
  }
  ++stats_.nodes;
  const long node = stats_.nodes;
  if (params_.log && stats_.nodes % 1000 == 0) {
    log_info("milp: ", stats_.nodes, " nodes, ", stats_.lp_iterations,
             " LP iterations, incumbent ",
             have_incumbent_ ? obj_sign_ * best_obj_min_ : 0.0);
  }
  if (obs::metrics_enabled()) {
    static obs::Histogram& depth_hist = obs::metrics().histogram(
        "milp.node_depth", {1, 2, 4, 8, 16, 24, 32, 48, 64, 96});
    depth_hist.observe(static_cast<double>(depth));
    obs::metrics().counter("milp.nodes").add();
  }

  const LpResult lp = solve_relaxation(parent_basis);
  // Per-node events are the verbose tail of the search log; every site
  // guards explicitly so the field lists are never built when it is off.
  if (obs::search_log_enabled()) {
    obs::search_event(
        "node", {{"node", json::Value{node}},
                 {"depth", json::Value{depth}},
                 {"warm", json::Value{lp.used_warm_start}},
                 {"bound", lp.status == LpStatus::kOptimal
                               ? json::Value{obj_sign_ * lp.objective}
                               : json::Value{}}});
  }
  if (lp.status == LpStatus::kInfeasible) {
    if (obs::search_log_enabled()) {
      obs::search_event("prune", {{"node", json::Value{node}},
                                  {"reason", json::Value{"infeasible"}}});
    }
    return true;  // prune
  }
  if (lp.status == LpStatus::kIterLimit) {
    truncated_ = true;
    return false;
  }
  if (stats_.nodes == 1) {
    stats_.root_bound = obj_sign_ * lp.objective;
    have_root_bound_ = true;
  }

  if (have_incumbent_ && lp.objective >= best_obj_min_ - params_.abs_gap) {
    if (obs::search_log_enabled()) {
      obs::search_event("prune", {{"node", json::Value{node}},
                                  {"reason", json::Value{"bound"}}});
    }
    return true;  // bound prune
  }

  const int j = pick_branch_var(lp.x);
  if (j < 0) {
    accept_incumbent(lp.x, lp.objective);
    return true;
  }
  if (obs::search_log_enabled()) {
    obs::search_event(
        "branch",
        {{"node", json::Value{node}},
         {"var", json::Value{j}},
         {"value", json::Value{lp.x[static_cast<std::size_t>(j)]}}});
  }

  const double v = lp.x[static_cast<std::size_t>(j)];
  const double fl = std::floor(v);
  const auto idx = static_cast<std::size_t>(j);
  const double saved_lb = lp_.lb[idx];
  const double saved_ub = lp_.ub[idx];

  // Nearest-integer child first: dives toward an early incumbent.
  const bool down_first = (v - fl) <= 0.5;
  for (int child = 0; child < 2; ++child) {
    const bool down = (child == 0) == down_first;
    if (down) {
      lp_.lb[idx] = saved_lb;
      lp_.ub[idx] = fl;
    } else {
      lp_.lb[idx] = fl + 1.0;
      lp_.ub[idx] = saved_ub;
    }
    // Each child differs from this node by one bound, so the parent's
    // optimal basis is dual feasible for it: the revised simplex re-enters
    // through the dual method and typically needs only a few pivots.
    const bool child_feasible_bounds = lp_.lb[idx] <= lp_.ub[idx];
    if (child_feasible_bounds && !explore(&lp.basis, depth + 1)) {
      lp_.lb[idx] = saved_lb;
      lp_.ub[idx] = saved_ub;
      return false;
    }
  }
  lp_.lb[idx] = saved_lb;
  lp_.ub[idx] = saved_ub;
  return true;
}

Solution BranchAndBound::run() {
  Timer timer;
  Solution out;
  (void)explore(nullptr, 0);
  stats_.runtime_s = timer.seconds();
  out.stats = stats_;
  if (have_incumbent_) {
    out.status = truncated_ ? MilpStatus::kFeasible : MilpStatus::kOptimal;
    out.objective = obj_sign_ * best_obj_min_;
    // Report only the caller's variables, not the linearization auxiliaries.
    best_x_.resize(static_cast<std::size_t>(original_vars_));
    out.values = std::move(best_x_);
  } else {
    out.status = truncated_ ? MilpStatus::kUnknown : MilpStatus::kInfeasible;
  }
  // An exhausted tree is a proof: the gap timeline closes at exactly 0.
  if (out.status == MilpStatus::kOptimal && obs::metrics_enabled()) {
    obs::metrics().series("search.gap").record(0.0);
  }
  if (obs::search_log_enabled()) {
    obs::search_event("milp_done",
                      {{"status", json::Value{to_string(out.status)}},
                       {"nodes", json::Value{stats_.nodes}},
                       {"warm_starts", json::Value{stats_.warm_starts}},
                       {"cold_starts", json::Value{stats_.cold_starts}},
                       {"obj", out.has_solution() ? json::Value{out.objective}
                                                  : json::Value{}}});
  }
  return out;
}

}  // namespace

Solution solve_milp(const Model& model, const MilpParams& params) {
  obs::TraceSpan span("milp.solve");
  Model work = model;  // keep the caller's model untouched
  const int original_vars = model.num_vars();
  const int aux = linearize_products(work);
  if (params.log && aux > 0) {
    log_info("milp: linearized ", aux, " binary products");
  }
  if (params.presolve) {
    obs::TraceSpan presolve_span("milp.presolve");
    const PresolveStats ps = opt::presolve(work);
    if (params.log) {
      log_info("milp: presolve tightened ", ps.bound_tightenings,
               " bounds, removed ", ps.rows_removed, " rows, fixed ",
               ps.vars_fixed, " vars");
    }
    if (ps.proven_infeasible) {
      Solution out;
      out.status = MilpStatus::kInfeasible;
      return out;
    }
  }
  BranchAndBound search(std::move(work), params, original_vars);
  return search.run();
}

}  // namespace mlsi::opt
