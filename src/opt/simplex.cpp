#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "opt/basis_lu.hpp"
#include "opt/simplex_dense.hpp"
#include "opt/sparse.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace mlsi::opt {
namespace {

/// Rates smaller than this cannot block a move: over any step bounded by the
/// variable spans they change a basic value by less than the feasibility
/// tolerance.
constexpr double kRateTol = 1e-9;
/// Dual pivot entries below this are treated as zero (ineligible).
constexpr double kAlphaTol = 1e-9;
/// Pivots between full recomputations of the basic values (drift cap).
constexpr int kValueRefreshInterval = 64;
/// Devex/steepest-edge weights beyond this trigger a reference-framework
/// reset (the approximation has drifted far from any plausible norm).
constexpr double kWeightResetLimit = 1e8;

/// Sparse revised bounded-variable simplex (see simplex.hpp for the method
/// overview). One instance per solve.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpProblem& lp, const LpParams& params)
      : lp_(lp), params_(params) {}

  LpResult run();

 private:
  enum class DualOutcome {
    kFeasible,    ///< primal feasibility reached; finish with primal phase 2
    kFallback,    ///< numerics/cap: keep the basis, rerun primal phase 1
    kInfeasible,  ///< dual unbounded: the LP is primal infeasible
    kLimit,       ///< deadline / stop / max_iters
  };

  // --- setup ---------------------------------------------------------------
  void build();
  void cold_start();
  /// Adopts params_.warm_basis when well-formed and factorizable without
  /// repair. Falls back to cold_start() and returns false otherwise.
  bool adopt_warm_basis();

  // --- shared machinery ----------------------------------------------------
  /// (Re)factorizes basis_, repairing singularity (sets basis_repaired_ and
  /// kicks dropped columns to their nearer bound), then rebuilds the row
  /// maps and the basic values.
  void factorize_basis();
  /// Recomputes every basic value from the nonbasic assignment via FTRAN.
  void compute_basic_values();
  /// w := B^{-1} a_j (dense scratch, sparse apply).
  void ftran_column(int j, std::vector<double>& w);

  [[nodiscard]] double col_span(int j) const { return up_[j] - lo_[j]; }
  [[nodiscard]] bool is_basic(int j) const { return basic_row_[j] >= 0; }
  [[nodiscard]] double infeasibility() const;
  [[nodiscard]] double objective_value() const;
  /// Counts one iteration against max_iters / deadline / stop.
  [[nodiscard]] bool budget_exhausted();

  // --- pricing -------------------------------------------------------------
  struct Candidate {
    int j = -1;
    double dir = 0.0;
  };
  /// Picks an entering column. Phase 1 prices the infeasibility gradient
  /// g_j = a_j·B^{-T}s (s = ±1 per violated basic row); phase 2 prices the
  /// reduced costs d_j = c_j - a_j·B^{-T}c_B. Dantzig mode does sectioned
  /// partial pricing with a rotating cursor; devex/steepest-edge score
  /// every attractive column by d_j²/w_j against the reference weights.
  /// Bland mode scans everything and returns the smallest attractive index
  /// (anti-cycling). j = -1 when none qualifies.
  Candidate price(bool phase1, bool bland);
  /// True when reference weights drive selection (devex / steepest edge,
  /// outside Bland mode).
  [[nodiscard]] bool weighted_pricing() const {
    return params_.pricing != LpPricing::kDantzig;
  }
  /// Forrest–Goldfarb update of the primal reference weights for the pivot
  /// "q enters at row r" (w = B^{-1}a_q against the pre-pivot basis). Must
  /// run before the LU update. Devex takes one BTRAN (the pivot row);
  /// steepest edge adds one more for the exact Goldfarb recurrence.
  void update_primal_weights(int q, int r, const std::vector<double>& w);
  /// Dual mirror: row weights approximating ||B^{-T}e_r||², updated from
  /// the FTRAN'd entering column (devex) or exactly via one extra FTRAN of
  /// the pivot row (steepest edge).
  void update_dual_weights(int r, double wr, const std::vector<double>& w);
  /// Resets both weight sets to the unit reference framework.
  void reset_weights();

  // --- ratio test ----------------------------------------------------------
  struct Block {
    int leave_row = -1;  ///< -1: bound flip
    double t = 0.0;      ///< step length
    double leave_to = 0.0;
  };
  /// Two-pass (Harris-style) ratio test over the FTRAN'd entering column
  /// \p w: minimum blocking ratio first, then the largest |pivot| among
  /// near-minimal rows (Bland mode: smallest basic index). phase1 enables
  /// the extended bounds of currently infeasible basics.
  [[nodiscard]] Block ratio_test(const std::vector<double>& w, int j,
                                 double dir, bool phase1, bool bland) const;
  /// Applies a ratio-test outcome: moves values, then flips or pivots
  /// (LU product-form update, refactorizing when the update is rejected or
  /// the eta file outgrows its budget).
  void apply_step(int j, double dir, const std::vector<double>& w,
                  const Block& block);

  // --- primal phases -------------------------------------------------------
  bool run_phase1();
  /// Returns true when the basis had to be repaired mid-phase and phase 1
  /// must re-establish feasibility; status_ is set otherwise.
  bool run_phase2();

  // --- dual simplex (warm-start entry) -------------------------------------
  /// d[j] := c_j - a_j·B^{-T}c_B for nonbasic j, 0 for basic.
  void compute_reduced_costs(std::vector<double>& d);
  /// Flips boxed nonbasics whose reduced cost has the wrong sign for their
  /// bound — after this the basis is dual feasible (every column is boxed,
  /// so a flip always exists). Recomputes basic values when anything moved.
  void restore_dual_feasibility(std::vector<double>& d);
  DualOutcome run_dual();

  const LpProblem& lp_;
  const LpParams& params_;

  int m_ = 0;     ///< rows
  int n_ = 0;     ///< structural columns
  int cols_ = 0;  ///< n_ + m_

  CscMatrix mat_;      ///< M = [A | -I]
  BasisLu lu_{&mat_};  ///< basis factorization over mat_

  std::vector<double> lo_, up_;  ///< bounds for all cols (slacks clipped)
  std::vector<double> cost_;     ///< phase-2 costs (slack = 0)
  std::vector<double> val_;      ///< current value of every column
  std::vector<int> basis_;       ///< basis_[r] = column basic in row r
  std::vector<int> basic_row_;   ///< col -> row, or -1 when nonbasic
  std::vector<char> in_basis_;   ///< col -> 0/1 (BasisLu repair input)

  std::vector<double> y_work_;    ///< BTRAN scratch (pricing)
  std::vector<double> rhs_work_;  ///< FTRAN scratch (basic values)
  std::vector<double> w_;         ///< FTRAN'd entering column
  std::vector<double> rho_;       ///< dual: B^{-T} e_r
  std::vector<double> alpha_;     ///< dual: pivot row alpha_j = a_j·rho
  std::vector<double> tau_;       ///< steepest-edge scratch (2nd BTRAN/FTRAN)
  std::vector<double> col_weight_;  ///< devex/SE weights, per working column
  std::vector<double> row_weight_;  ///< dual devex/SE weights, per basis row
  /// Scratch for carrying row weights through a refactorization's basis
  /// permutation (indexed by working column).
  std::vector<double> row_weight_work_;

  int cursor_ = 0;  ///< partial-pricing rotation state
  long iters_ = 0;
  long phase1_iters_ = 0;
  long dual_iters_ = 0;
  long bland_iters_ = 0;
  long degen_ = 0;  ///< pivots with a ~zero Harris step
  int pivots_since_refresh_ = 0;
  bool basis_repaired_ = false;
  bool used_warm_start_ = false;
  LpStatus status_ = LpStatus::kIterLimit;
};

void RevisedSimplex::build() {
  m_ = static_cast<int>(lp_.rows.size());
  n_ = lp_.num_vars;
  cols_ = n_ + m_;
  mat_ = build_working_matrix(lp_);
  WorkingColumns wc = build_working_columns(lp_);
  lo_ = std::move(wc.lo);
  up_ = std::move(wc.up);
  cost_ = std::move(wc.cost);
  val_.assign(static_cast<std::size_t>(cols_), 0.0);
  basis_.resize(static_cast<std::size_t>(m_));
  basic_row_.assign(static_cast<std::size_t>(cols_), -1);
  in_basis_.assign(static_cast<std::size_t>(cols_), 0);
  col_weight_.assign(static_cast<std::size_t>(cols_), 1.0);
  row_weight_.assign(static_cast<std::size_t>(m_), 1.0);
}

void RevisedSimplex::reset_weights() {
  std::fill(col_weight_.begin(), col_weight_.end(), 1.0);
  std::fill(row_weight_.begin(), row_weight_.end(), 1.0);
}

void RevisedSimplex::cold_start() {
  for (int j = 0; j < cols_; ++j) {
    // Nonbasic start: the bound with smaller magnitude (keeps values small).
    val_[j] = std::fabs(lo_[j]) <= std::fabs(up_[j]) ? lo_[j] : up_[j];
  }
  std::fill(basic_row_.begin(), basic_row_.end(), -1);
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  for (int r = 0; r < m_; ++r) {
    basis_[static_cast<std::size_t>(r)] = n_ + r;
    basic_row_[n_ + r] = r;
    in_basis_[static_cast<std::size_t>(n_ + r)] = 1;
  }
  factorize_basis();  // trivial triangular factor; fills basic values
  // A cold start is a brand-new slack basis: begin a fresh unit reference
  // framework (weights carried over from whatever basis preceded the
  // fallback would be stale).
  reset_weights();
  basis_repaired_ = false;
}

bool RevisedSimplex::adopt_warm_basis() {
  const LpBasis* wb = params_.warm_basis;
  if (wb == nullptr || static_cast<int>(wb->basic.size()) != m_ ||
      static_cast<int>(wb->status.size()) != cols_) {
    return false;
  }
  std::vector<char> seen(static_cast<std::size_t>(cols_), 0);
  for (const int c : wb->basic) {
    if (c < 0 || c >= cols_ || seen[static_cast<std::size_t>(c)] != 0) {
      return false;
    }
    seen[static_cast<std::size_t>(c)] = 1;
  }
  basis_ = wb->basic;
  in_basis_ = std::move(seen);
  std::fill(basic_row_.begin(), basic_row_.end(), -1);
  for (int r = 0; r < m_; ++r) {
    basic_row_[basis_[static_cast<std::size_t>(r)]] = r;
  }
  // Nonbasic columns sit at the snapshot's bound — re-evaluated against the
  // *current* (possibly tightened) box, which is exactly what makes the
  // parent basis dual feasible for the child.
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j)) continue;
    val_[j] = wb->status[static_cast<std::size_t>(j)] == ColStatus::kAtUpper
                  ? up_[j]
                  : lo_[j];
  }
  factorize_basis();
  if (basis_repaired_) {
    // The snapshot is singular for this problem; a repaired basis has no
    // dual-feasibility guarantee, so cold-start instead.
    cold_start();
    return false;
  }
  return true;
}

void RevisedSimplex::factorize_basis() {
  std::vector<int> old = basis_;
  const int repaired = lu_.factorize(basis_, in_basis_);
  if (repaired > 0) {
    std::vector<char> now(static_cast<std::size_t>(cols_), 0);
    for (int r = 0; r < m_; ++r) {
      now[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 1;
    }
    for (const int c : old) {
      if (now[static_cast<std::size_t>(c)] != 0) continue;
      // Dropped as dependent: park on the nearer bound.
      val_[c] = std::fabs(val_[c] - lo_[c]) <= std::fabs(val_[c] - up_[c])
                    ? lo_[c]
                    : up_[c];
    }
    basis_repaired_ = true;
    log_debug("simplex: refactorization repaired ", repaired, " positions");
  }
  // factorize() permutes basis_, so the maps need rebuilding either way.
  std::fill(basic_row_.begin(), basic_row_.end(), -1);
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    basic_row_[b] = r;
    in_basis_[static_cast<std::size_t>(b)] = 1;
  }
  // Reference weights persist across refactorizations: the basis matrix is
  // unchanged (only its factors were rebuilt), so the column weights stay
  // exact approximations and resetting them to the unit framework would
  // forfeit steepest-edge's accumulated edge on long solves. factorize()
  // may have permuted basis_, so the row-indexed dual weights are carried
  // through the permutation (row r's weight travels with the column that
  // was basic there). A *repaired* basis is a different matrix — weights
  // anchored to the old one are meaningless, reset to the unit framework.
  if (repaired > 0) {
    reset_weights();
  } else {
    row_weight_work_.assign(static_cast<std::size_t>(cols_), 1.0);
    for (std::size_t r = 0; r < old.size(); ++r) {
      row_weight_work_[static_cast<std::size_t>(old[r])] = row_weight_[r];
    }
    for (int r = 0; r < m_; ++r) {
      row_weight_[static_cast<std::size_t>(r)] =
          row_weight_work_[static_cast<std::size_t>(
              basis_[static_cast<std::size_t>(r)])];
    }
  }
  compute_basic_values();
}

void RevisedSimplex::compute_basic_values() {
  // M x = 0  =>  x_B = B^{-1} (-N x_N).
  rhs_work_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j)) continue;
    const double v = val_[j];
    if (v != 0.0) mat_.add_column(j, -v, rhs_work_);
  }
  lu_.ftran(rhs_work_);
  for (int r = 0; r < m_; ++r) {
    val_[basis_[static_cast<std::size_t>(r)]] =
        rhs_work_[static_cast<std::size_t>(r)];
  }
  pivots_since_refresh_ = 0;
}

void RevisedSimplex::ftran_column(int j, std::vector<double>& w) {
  w.assign(static_cast<std::size_t>(m_), 0.0);
  mat_.add_column(j, 1.0, w);
  lu_.ftran(w);
}

double RevisedSimplex::infeasibility() const {
  double sum = 0.0;
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (val_[b] < lo_[b]) {
      sum += lo_[b] - val_[b];
    } else if (val_[b] > up_[b]) {
      sum += val_[b] - up_[b];
    }
  }
  return sum;
}

double RevisedSimplex::objective_value() const {
  double acc = lp_.cost_constant;
  for (int j = 0; j < n_; ++j) acc += cost_[j] * val_[j];
  return acc;
}

bool RevisedSimplex::budget_exhausted() {
  return ++iters_ > params_.max_iters || params_.deadline.expired() ||
         params_.stop.stop_requested();
}

RevisedSimplex::Candidate RevisedSimplex::price(bool phase1, bool bland) {
  const double ftol = params_.feas_tol;
  y_work_.assign(static_cast<std::size_t>(m_), 0.0);
  if (phase1) {
    // s_r = +1 where the basic value sits below its lower bound, -1 above
    // the upper; the infeasibility gradient along nonbasic j is then
    // g_j = a_j · B^{-T} s (the revised form of the dense row sums).
    bool any = false;
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (val_[b] < lo_[b] - ftol) {
        y_work_[static_cast<std::size_t>(r)] = 1.0;
        any = true;
      } else if (val_[b] > up_[b] + ftol) {
        y_work_[static_cast<std::size_t>(r)] = -1.0;
        any = true;
      }
    }
    if (!any) return {};  // primal feasible
  } else {
    for (int r = 0; r < m_; ++r) {
      y_work_[static_cast<std::size_t>(r)] =
          cost_[basis_[static_cast<std::size_t>(r)]];
    }
  }
  lu_.btran(y_work_);

  const double threshold = -(phase1 ? ftol : params_.opt_tol);
  const auto score_of = [&](int j, double* dir_out) {
    const double v = phase1 ? mat_.dot_column(j, y_work_)
                            : cost_[j] - mat_.dot_column(j, y_work_);
    const bool at_lo = val_[j] <= lo_[j] + ftol;
    const bool at_up = val_[j] >= up_[j] - ftol;
    double dir;
    if (at_lo && !at_up) {
      dir = 1.0;
    } else if (at_up && !at_lo) {
      dir = -1.0;
    } else {
      dir = v < 0 ? 1.0 : -1.0;
    }
    *dir_out = dir;
    return dir * v;  // rate of change along the move; want < 0
  };

  Candidate best;
  if (bland) {
    // Exact anti-cycling scan: the smallest attractive index wins.
    for (int j = 0; j < cols_; ++j) {
      if (is_basic(j) || col_span(j) < ftol) continue;
      double dir;
      if (score_of(j, &dir) < threshold) return {j, dir};
    }
    return best;
  }
  if (weighted_pricing()) {
    // Devex / steepest edge: full scan, best d²/w ratio wins. The weights
    // approximate ||B^{-1}a_j||², so the score is the squared objective
    // rate per unit of *edge* length — the measure Dantzig pricing ignores
    // and the reason it zig-zags on degenerate vertices.
    double best_ratio = 0.0;
    for (int j = 0; j < cols_; ++j) {
      if (is_basic(j) || col_span(j) < ftol) continue;
      double dir;
      const double s = score_of(j, &dir);
      if (s >= threshold) continue;
      const double ratio =
          s * s / std::max(col_weight_[static_cast<std::size_t>(j)], 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = {j, dir};
      }
    }
    return best;
  }
  // Sectioned partial pricing: scan fixed-size windows from a rotating
  // cursor and take the best candidate of the first window holding one.
  // Spreads pricing work across the column range without giving up the
  // steepest-in-window choice; a full fruitless rotation proves there is
  // no attractive column at all.
  const int section = std::max(32, cols_ / 8);
  double best_score = threshold;
  int pos = cursor_;
  int scanned = 0;
  while (scanned < cols_) {
    const int stop = std::min(scanned + section, cols_);
    for (; scanned < stop; ++scanned) {
      const int j = pos;
      pos = pos + 1 == cols_ ? 0 : pos + 1;
      if (is_basic(j) || col_span(j) < ftol) continue;
      double dir;
      const double s = score_of(j, &dir);
      if (s < best_score) {
        best_score = s;
        best = {j, dir};
      }
    }
    if (best.j >= 0) break;
  }
  cursor_ = pos;
  return best;
}

void RevisedSimplex::update_primal_weights(int q, int r,
                                           const std::vector<double>& w) {
  const double alpha_q = w[static_cast<std::size_t>(r)];
  if (std::fabs(alpha_q) <= kAlphaTol) {
    // Too small to normalize against; re-anchor rather than divide by it.
    reset_weights();
    return;
  }
  // Pivot row of the pre-pivot basis: rho = B^{-T} e_r, alpha_j = a_j·rho.
  rho_.assign(static_cast<std::size_t>(m_), 0.0);
  rho_[static_cast<std::size_t>(r)] = 1.0;
  lu_.btran(rho_);
  const bool exact = params_.pricing == LpPricing::kSteepestEdge;
  double gamma_q = col_weight_[static_cast<std::size_t>(q)];
  if (exact) {
    // gamma_q = 1 + ||B^{-1}a_q||² is available for free: w IS B^{-1}a_q.
    gamma_q = 1.0;
    for (const double wi : w) gamma_q += wi * wi;
    tau_ = w;
    lu_.btran(tau_);  // tau = B^{-T}B^{-1}a_q, the Goldfarb cross term
  }
  bool overflow = false;
  for (int j = 0; j < cols_; ++j) {
    if (j == q || is_basic(j)) continue;
    const double alpha_j = mat_.dot_column(j, rho_);
    if (alpha_j == 0.0) continue;
    const double ratio = alpha_j / alpha_q;
    double& wj = col_weight_[static_cast<std::size_t>(j)];
    if (exact) {
      const double beta_j = mat_.dot_column(j, tau_);
      // Goldfarb recurrence, floored by the norm contribution the pivot
      // itself guarantees (guards roundoff-negative weights).
      wj = std::max(wj - 2.0 * ratio * beta_j + ratio * ratio * gamma_q,
                    1.0 + ratio * ratio);
    } else {
      // Forrest–Goldfarb devex: monotone max update within the framework.
      wj = std::max(wj, ratio * ratio * gamma_q);
    }
    if (wj > kWeightResetLimit) overflow = true;
  }
  // The leaving variable joins the nonbasic set along the entering edge.
  const int leaving = basis_[static_cast<std::size_t>(r)];
  col_weight_[static_cast<std::size_t>(leaving)] =
      std::max(gamma_q / (alpha_q * alpha_q), 1.0);
  if (col_weight_[static_cast<std::size_t>(leaving)] > kWeightResetLimit) {
    overflow = true;
  }
  if (overflow) reset_weights();
}

void RevisedSimplex::update_dual_weights(int r, double wr,
                                         const std::vector<double>& w) {
  if (std::fabs(wr) <= kAlphaTol) {
    reset_weights();
    return;
  }
  const bool exact = params_.pricing == LpPricing::kSteepestEdge;
  double gamma_r = row_weight_[static_cast<std::size_t>(r)];
  if (exact) {
    // rho_ still holds B^{-T}e_r for this pivot: the exact norm is free.
    gamma_r = 0.0;
    for (const double v : rho_) gamma_r += v * v;
    tau_ = rho_;
    lu_.ftran(tau_);  // tau = B^{-1}B^{-T}e_r
  }
  bool overflow = false;
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double wi = w[static_cast<std::size_t>(i)];
    if (wi == 0.0) continue;
    const double ratio = wi / wr;
    double& g = row_weight_[static_cast<std::size_t>(i)];
    if (exact) {
      g = std::max(g - 2.0 * ratio * tau_[static_cast<std::size_t>(i)] +
                       ratio * ratio * gamma_r,
                   1e-4);
    } else {
      g = std::max(g, ratio * ratio * gamma_r);
    }
    if (g > kWeightResetLimit) overflow = true;
  }
  row_weight_[static_cast<std::size_t>(r)] =
      std::max(gamma_r / (wr * wr), 1e-4);
  if (overflow) reset_weights();
}

RevisedSimplex::Block RevisedSimplex::ratio_test(const std::vector<double>& w,
                                                 int j, double dir, bool phase1,
                                                 bool bland) const {
  const double ftol = params_.feas_tol;
  const double t_bound = dir > 0 ? up_[j] - val_[j] : val_[j] - lo_[j];

  // Per-row blocking limit under the move; kInf when the row cannot block.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto row_limit = [&](int r, double* to_out, double* rate_out) {
    const double rate = -dir * w[static_cast<std::size_t>(r)];
    *rate_out = rate;
    if (std::fabs(rate) <= kRateTol) return kInf;
    const int b = basis_[static_cast<std::size_t>(r)];
    double limit = kInf;
    double to = 0.0;
    if (phase1 && val_[b] < lo_[b] - ftol) {
      // Infeasible below: blocks only when moving up, at its lower bound.
      if (rate > 0) {
        limit = (lo_[b] - val_[b]) / rate;
        to = lo_[b];
      }
    } else if (phase1 && val_[b] > up_[b] + ftol) {
      if (rate < 0) {
        limit = (up_[b] - val_[b]) / rate;
        to = up_[b];
      }
    } else if (rate > 0) {
      limit = (up_[b] - val_[b]) / rate;
      to = up_[b];
    } else {
      limit = (lo_[b] - val_[b]) / rate;
      to = lo_[b];
    }
    if (limit < 0.0) limit = 0.0;  // degeneracy / tolerance noise
    *to_out = to;
    return limit;
  };

  // Pass 1: minimum ratio over the rows.
  double t_rows = kInf;
  for (int r = 0; r < m_; ++r) {
    double to;
    double rate;
    t_rows = std::min(t_rows, row_limit(r, &to, &rate));
  }

  Block block;
  if (t_rows >= t_bound - 1e-9) {
    // The entering variable's own bound blocks first: bound flip.
    block.leave_row = -1;
    block.t = t_bound;
    return block;
  }

  // Pass 2: among rows within tolerance of the minimum ratio, prefer the
  // largest |pivot| (Bland mode: the smallest basic index).
  block.t = t_rows;
  double best_metric = -1.0;
  int best_basic = std::numeric_limits<int>::max();
  for (int r = 0; r < m_; ++r) {
    double to;
    double rate;
    if (row_limit(r, &to, &rate) > t_rows + 1e-9) continue;
    const int b = basis_[static_cast<std::size_t>(r)];
    const bool better = bland ? b < best_basic : std::fabs(rate) > best_metric;
    if (better) {
      best_metric = std::fabs(rate);
      best_basic = b;
      block.leave_row = r;
      block.leave_to = to;
    }
  }
  MLSI_ASSERT(block.leave_row >= 0, "ratio test lost its blocking row");
  return block;
}

void RevisedSimplex::apply_step(int j, double dir,
                                const std::vector<double>& w,
                                const Block& block) {
  const double t = block.t;
  if (t != 0.0) {
    for (int r = 0; r < m_; ++r) {
      const double wr = w[static_cast<std::size_t>(r)];
      if (wr != 0.0) {
        // Basic value rate along the move is -dir * w_r.
        val_[basis_[static_cast<std::size_t>(r)]] -= dir * wr * t;
      }
    }
    val_[j] += dir * t;
  }
  if (block.leave_row < 0) {
    // Bound flip: snap exactly onto the far bound.
    val_[j] = dir > 0 ? up_[j] : lo_[j];
    return;
  }
  // Snap the leaving variable exactly onto its blocking bound, then swap it
  // for the entering column and append the product-form update.
  if (t < 1e-12) ++degen_;
  const int r = block.leave_row;
  // Reference weights need the pre-pivot basis (BTRAN of e_r and the
  // nonbasic partition), so update them before the swap and LU update.
  if (weighted_pricing()) update_primal_weights(j, r, w);
  const int leaving = basis_[static_cast<std::size_t>(r)];
  val_[leaving] = block.leave_to;
  basic_row_[leaving] = -1;
  in_basis_[static_cast<std::size_t>(leaving)] = 0;
  basis_[static_cast<std::size_t>(r)] = j;
  basic_row_[j] = r;
  in_basis_[static_cast<std::size_t>(j)] = 1;
  if (!lu_.update(r, w) || lu_.should_refactorize()) {
    factorize_basis();
  } else if (++pivots_since_refresh_ >= kValueRefreshInterval) {
    compute_basic_values();
  }
}

bool RevisedSimplex::run_phase1() {
  const double inf_tol = params_.feas_tol * static_cast<double>(m_ + 1);
  double last_inf = infeasibility();
  if (last_inf <= inf_tol) return true;
  int stall = 0;
  bool bland = false;
  while (true) {
    if (budget_exhausted()) {
      status_ = LpStatus::kIterLimit;
      return false;
    }
    const Candidate c = price(/*phase1=*/true, bland);
    if (c.j < 0) {
      // Feasible or stuck: decide against a freshly refactorized basis.
      factorize_basis();
      if (infeasibility() <= inf_tol) return true;
      if (!bland) {
        bland = true;  // one exact retry before declaring infeasible
        continue;
      }
      status_ = LpStatus::kInfeasible;
      return false;
    }
    ++phase1_iters_;
    if (bland) ++bland_iters_;
    ftran_column(c.j, w_);
    apply_step(c.j, c.dir, w_,
               ratio_test(w_, c.j, c.dir, /*phase1=*/true, bland));
    const double inf = infeasibility();
    if (inf <= inf_tol) {
      factorize_basis();
      if (infeasibility() <= inf_tol) return true;
      last_inf = infeasibility();
      continue;
    }
    if (inf < last_inf - params_.feas_tol) {
      last_inf = inf;
      stall = 0;
      bland = false;
    } else if (++stall >= params_.stall_limit) {
      bland = true;  // anti-cycling
      stall = 0;
      factorize_basis();
    }
  }
}

bool RevisedSimplex::run_phase2() {
  double last_obj = objective_value();
  int stall = 0;
  bool bland = false;
  while (true) {
    if (basis_repaired_) {
      // A refactorization repaired the basis; primal feasibility is no
      // longer guaranteed — hand control back to phase 1.
      basis_repaired_ = false;
      return true;
    }
    if (budget_exhausted()) {
      status_ = LpStatus::kIterLimit;
      return false;
    }
    Candidate c = price(/*phase1=*/false, bland);
    if (c.j < 0) {
      // Confirm optimality against a fresh factorization: eta-file drift
      // must not declare victory silently.
      factorize_basis();
      if (basis_repaired_) continue;  // handled at the loop head
      c = price(/*phase1=*/false, bland);
      if (c.j < 0) {
        status_ = LpStatus::kOptimal;
        return false;
      }
    }
    if (bland) ++bland_iters_;
    ftran_column(c.j, w_);
    apply_step(c.j, c.dir, w_,
               ratio_test(w_, c.j, c.dir, /*phase1=*/false, bland));
    const double obj = objective_value();
    if (obj < last_obj - params_.opt_tol) {
      last_obj = obj;
      stall = 0;
      bland = false;
    } else if (++stall >= params_.stall_limit) {
      bland = true;
      stall = 0;
      factorize_basis();
    }
  }
}

void RevisedSimplex::compute_reduced_costs(std::vector<double>& d) {
  y_work_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int r = 0; r < m_; ++r) {
    y_work_[static_cast<std::size_t>(r)] =
        cost_[basis_[static_cast<std::size_t>(r)]];
  }
  lu_.btran(y_work_);
  d.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j)) continue;
    d[static_cast<std::size_t>(j)] = cost_[j] - mat_.dot_column(j, y_work_);
  }
}

void RevisedSimplex::restore_dual_feasibility(std::vector<double>& d) {
  const double ftol = params_.feas_tol;
  const double otol = params_.opt_tol;
  long flips = 0;
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j) || col_span(j) < ftol) continue;
    const bool at_lo =
        std::fabs(val_[j] - lo_[j]) <= std::fabs(val_[j] - up_[j]);
    if (at_lo && d[static_cast<std::size_t>(j)] < -otol) {
      val_[j] = up_[j];
      ++flips;
    } else if (!at_lo && d[static_cast<std::size_t>(j)] > otol) {
      val_[j] = lo_[j];
      ++flips;
    }
  }
  if (flips > 0) compute_basic_values();
}

RevisedSimplex::DualOutcome RevisedSimplex::run_dual() {
  const double ftol = params_.feas_tol;
  std::vector<double> d;
  compute_reduced_costs(d);
  restore_dual_feasibility(d);

  // Re-solves after a single bound change converge in a handful of pivots;
  // anything past this cap smells of dual cycling — hand the basis over to
  // the battle-tested primal phase 1 instead of spinning.
  const long cap = std::max<long>(500, 2L * (m_ + cols_));
  long taken = 0;
  bool retried = false;
  while (true) {
    // Leaving row: largest bound violation (Dantzig), or largest
    // viol²/weight under devex/steepest-edge row weights — the dual mirror
    // of d²/w entering-column pricing.
    int r = -1;
    double best_score = 0.0;
    double sigma = 0.0;
    double target = 0.0;
    const bool weighted = weighted_pricing();
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      double v;
      double sg;
      double tg;
      if (val_[b] < lo_[b] - ftol) {
        v = lo_[b] - val_[b];
        sg = -1.0;
        tg = lo_[b];
      } else if (val_[b] > up_[b] + ftol) {
        v = val_[b] - up_[b];
        sg = 1.0;
        tg = up_[b];
      } else {
        continue;
      }
      const double score =
          weighted
              ? v * v /
                    std::max(row_weight_[static_cast<std::size_t>(i)], 1e-12)
              : v;
      if (score > best_score) {
        best_score = score;
        r = i;
        sigma = sg;
        target = tg;
      }
    }
    if (r < 0) return DualOutcome::kFeasible;
    if (++taken > cap) return DualOutcome::kFallback;
    if (budget_exhausted()) {
      status_ = LpStatus::kIterLimit;
      return DualOutcome::kLimit;
    }
    ++dual_iters_;

    // Pivot row: alpha_j = a_j · B^{-T} e_r for every nonbasic column.
    rho_.assign(static_cast<std::size_t>(m_), 0.0);
    rho_[static_cast<std::size_t>(r)] = 1.0;
    lu_.btran(rho_);
    alpha_.assign(static_cast<std::size_t>(cols_), 0.0);
    for (int j = 0; j < cols_; ++j) {
      if (is_basic(j)) continue;
      alpha_[static_cast<std::size_t>(j)] = mat_.dot_column(j, rho_);
    }

    // Dual ratio test: the entering column must push the leaving value
    // toward its violated bound (sign via sigma) while keeping every
    // reduced cost on the right side of zero. Two passes: exact minimum
    // ratio d_j/abar_j, then the largest |alpha| inside a tolerance window
    // (stability).
    const auto eligible = [&](int j, double* abar_out) {
      if (is_basic(j) || col_span(j) < ftol) return false;
      const double abar = sigma * alpha_[static_cast<std::size_t>(j)];
      if (std::fabs(abar) <= kAlphaTol) return false;
      const bool at_lo =
          std::fabs(val_[j] - lo_[j]) <= std::fabs(val_[j] - up_[j]);
      *abar_out = abar;
      return at_lo ? abar > 0.0 : abar < 0.0;
    };
    double rmin = std::numeric_limits<double>::infinity();
    for (int j = 0; j < cols_; ++j) {
      double abar;
      if (!eligible(j, &abar)) continue;
      rmin = std::min(rmin, d[static_cast<std::size_t>(j)] / abar);
    }
    if (!std::isfinite(rmin)) {
      // No entering candidate: the violated row is (numerically) fixed —
      // dual unbounded, i.e. primal infeasible. Confirm on a clean
      // factorization before giving up.
      if (!retried) {
        retried = true;
        factorize_basis();
        if (basis_repaired_) return DualOutcome::kFallback;
        compute_reduced_costs(d);
        restore_dual_feasibility(d);
        continue;
      }
      status_ = LpStatus::kInfeasible;
      return DualOutcome::kInfeasible;
    }
    retried = false;
    int q = -1;
    double best_abs = 0.0;
    for (int j = 0; j < cols_; ++j) {
      double abar;
      if (!eligible(j, &abar)) continue;
      if (d[static_cast<std::size_t>(j)] / abar > rmin + 1e-9) continue;
      if (std::fabs(abar) > best_abs) {
        best_abs = std::fabs(abar);
        q = j;
      }
    }
    MLSI_ASSERT(q >= 0, "dual ratio test lost its entering column");

    // Dual update: d_j -= theta * alpha_j; the leaving column picks up
    // -theta, whose sign lands on the correct side for the bound it goes to.
    const double theta =
        d[static_cast<std::size_t>(q)] / alpha_[static_cast<std::size_t>(q)];
    if (theta != 0.0) {
      for (int j = 0; j < cols_; ++j) {
        if (is_basic(j) || j == q) continue;
        const double a = alpha_[static_cast<std::size_t>(j)];
        if (a != 0.0) d[static_cast<std::size_t>(j)] -= theta * a;
      }
    }
    const int leaving = basis_[static_cast<std::size_t>(r)];
    d[static_cast<std::size_t>(leaving)] = -theta;
    d[static_cast<std::size_t>(q)] = 0.0;

    // Primal step: drive the leaving value exactly onto its bound. The
    // entering column may overshoot its own far bound — that is fine: it
    // becomes a primal-infeasible basic and a later dual pivot fixes it.
    ftran_column(q, w_);
    const double wr = w_[static_cast<std::size_t>(r)];
    if (std::fabs(wr) <= kAlphaTol) {
      // FTRAN disagrees with BTRAN about the pivot: stale etas. Rebuild and
      // restart the iteration rather than risk a destabilizing pivot.
      factorize_basis();
      if (basis_repaired_) return DualOutcome::kFallback;
      compute_reduced_costs(d);
      restore_dual_feasibility(d);
      continue;
    }
    if (weighted) update_dual_weights(r, wr, w_);
    const double delta = (val_[leaving] - target) / wr;
    if (delta != 0.0) {
      for (int i = 0; i < m_; ++i) {
        const double wi = w_[static_cast<std::size_t>(i)];
        if (wi != 0.0) {
          val_[basis_[static_cast<std::size_t>(i)]] -= wi * delta;
        }
      }
      val_[q] += delta;
    }
    val_[leaving] = target;
    basic_row_[leaving] = -1;
    in_basis_[static_cast<std::size_t>(leaving)] = 0;
    basis_[static_cast<std::size_t>(r)] = q;
    basic_row_[q] = r;
    in_basis_[static_cast<std::size_t>(q)] = 1;
    if (!lu_.update(r, w_) || lu_.should_refactorize()) {
      factorize_basis();
      if (basis_repaired_) return DualOutcome::kFallback;
      compute_reduced_costs(d);
      restore_dual_feasibility(d);
    } else if (++pivots_since_refresh_ >= kValueRefreshInterval) {
      compute_basic_values();
    }
  }
}

LpResult RevisedSimplex::run() {
  build();
  bool terminal = false;  // the dual already set a final status
  if (adopt_warm_basis()) {
    used_warm_start_ = true;
    switch (run_dual()) {
      case DualOutcome::kFeasible:
      case DualOutcome::kFallback:
        break;  // finish (or re-establish feasibility) on the primal side
      case DualOutcome::kInfeasible:
      case DualOutcome::kLimit:
        terminal = true;
        break;
    }
  } else {
    cold_start();
  }

  bool feasible = false;
  if (!terminal) {
    feasible = run_phase1();
    int restarts = 0;
    while (feasible) {
      basis_repaired_ = false;
      const bool restart = run_phase2();
      if (!restart) break;
      if (++restarts > 5) {
        status_ = LpStatus::kIterLimit;
        feasible = false;
        break;
      }
      feasible = run_phase1();
    }
  }

  LpResult out;
  if (feasible && status_ == LpStatus::kOptimal) {
    compute_basic_values();
    // Clamp residual tolerance noise into the box before reporting.
    out.x.resize(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      out.x[static_cast<std::size_t>(j)] = std::clamp(val_[j], lo_[j], up_[j]);
    }
    out.objective = objective_value();
  }
  out.status = status_;
  out.basis.basic = basis_;
  out.basis.status.resize(static_cast<std::size_t>(cols_));
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j)) {
      out.basis.status[static_cast<std::size_t>(j)] = ColStatus::kBasic;
    } else {
      out.basis.status[static_cast<std::size_t>(j)] =
          std::fabs(val_[j] - up_[j]) < std::fabs(val_[j] - lo_[j])
              ? ColStatus::kAtUpper
              : ColStatus::kAtLower;
    }
  }
  out.iterations = iters_;
  out.phase1_iterations = phase1_iters_;
  out.dual_iterations = dual_iters_;
  out.bland_iterations = bland_iters_;
  out.factorizations = lu_.factorizations();
  out.degenerate_steps = degen_;
  out.used_warm_start = used_warm_start_;
  return out;
}

}  // namespace

namespace {

/// Per-*solve* aggregates (never per-pivot — the overhead contract): call
/// counts as counters, shape-of-the-solve as histograms. Instrument
/// references are cached; the registry map probe happens once per process.
void record_lp_metrics(const LpResult& result, LpPricing pricing,
                       std::int64_t elapsed_us) {
  using obs::metrics;
  static obs::Counter& solves = metrics().counter("lp.solves");
  static obs::Counter& pivots = metrics().counter("lp.pivots");
  static obs::Counter& by_dantzig =
      metrics().counter("lp.pivots_by_rule.dantzig");
  static obs::Counter& by_devex = metrics().counter("lp.pivots_by_rule.devex");
  static obs::Counter& by_se =
      metrics().counter("lp.pivots_by_rule.steepest_edge");
  static obs::Counter& by_bland = metrics().counter("lp.pivots_by_rule.bland");
  static obs::Counter& degen = metrics().counter("lp.degenerate_steps");
  static obs::Counter& factor = metrics().counter("lp.factorizations");
  static obs::Counter& warm = metrics().counter("lp.warm_starts");
  static obs::Histogram& pivot_time = metrics().histogram(
      "lp.pivot_time_us", {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000});
  static obs::Histogram& refactor_interval = metrics().histogram(
      "lp.refactor_interval", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  static obs::Histogram& degen_per_solve = metrics().histogram(
      "lp.degenerate_steps_per_solve", {0, 1, 2, 5, 10, 25, 50, 100, 250});

  solves.add();
  pivots.add(result.iterations);
  const long ruled = result.iterations - result.bland_iterations;
  if (ruled > 0) {
    switch (pricing) {
      case LpPricing::kDantzig: by_dantzig.add(ruled); break;
      case LpPricing::kDevex: by_devex.add(ruled); break;
      case LpPricing::kSteepestEdge: by_se.add(ruled); break;
    }
  }
  if (result.bland_iterations > 0) by_bland.add(result.bland_iterations);
  degen.add(result.degenerate_steps);
  factor.add(result.factorizations);
  if (result.used_warm_start) warm.add();
  if (result.iterations > 0) {
    pivot_time.observe(static_cast<double>(elapsed_us) /
                       static_cast<double>(result.iterations));
  }
  if (result.factorizations > 0) {
    refactor_interval.observe(static_cast<double>(result.iterations) /
                              static_cast<double>(result.factorizations));
  }
  degen_per_solve.observe(static_cast<double>(result.degenerate_steps));
}

}  // namespace

LpResult solve_lp(const LpProblem& lp, const LpParams& params) {
  if (!obs::metrics_enabled()) {
    if (params.use_dense) return solve_lp_dense(lp, params);
    RevisedSimplex solver(lp, params);
    return solver.run();
  }
  const std::int64_t start_us = support::monotonic_us();
  LpResult result;
  if (params.use_dense) {
    result = solve_lp_dense(lp, params);
  } else {
    RevisedSimplex solver(lp, params);
    result = solver.run();
  }
  // The dense oracle always prices Dantzig-style regardless of the knob.
  record_lp_metrics(result,
                    params.use_dense ? LpPricing::kDantzig : params.pricing,
                    support::monotonic_us() - start_us);
  return result;
}

std::string_view to_string(LpPricing pricing) {
  switch (pricing) {
    case LpPricing::kDantzig: return "dantzig";
    case LpPricing::kDevex: return "devex";
    case LpPricing::kSteepestEdge: return "steepest_edge";
  }
  return "unknown";
}

}  // namespace mlsi::opt
