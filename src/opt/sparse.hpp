#pragma once

/// \file sparse.hpp
/// \brief Compressed-sparse-column storage of the working LP matrix.
///
/// Both simplex implementations operate on the working matrix
/// M = [A | -I]: one column per structural variable followed by one slack
/// column per row (a_r·x - s_r = 0). The revised simplex keeps M in CSC
/// form and never materializes B^{-1}; the routing/scheduling LPs the
/// synthesis layer produces touch only a handful of columns per row, so
/// packed columns cut both memory and per-iteration work from O(m·(n+m))
/// to O(nnz).

#include <vector>

#include "opt/simplex.hpp"

namespace mlsi::opt {

/// Immutable CSC matrix. Entries within a column are sorted by row and
/// duplicate-free (build_working_matrix merges duplicates on ingestion).
struct CscMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> start;    ///< size cols + 1; column j spans [start[j], start[j+1])
  std::vector<int> index;    ///< row index per entry
  std::vector<double> value; ///< coefficient per entry

  [[nodiscard]] int col_nnz(int j) const {
    return start[static_cast<std::size_t>(j) + 1] -
           start[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] long nnz() const { return static_cast<long>(index.size()); }

  /// y += scale * column j (y is a dense row-space vector).
  void add_column(int j, double scale, std::vector<double>& y) const;
  /// Sparse dot product column j · y.
  [[nodiscard]] double dot_column(int j, const std::vector<double>& y) const;
};

/// Builds M = [A | -I] from \p lp: columns 0..num_vars-1 are the structural
/// columns of A (duplicate terms merged), column num_vars + r is the slack
/// column -e_r of row r.
[[nodiscard]] CscMatrix build_working_matrix(const LpProblem& lp);

/// Bounds and phase-2 costs for all n + m working columns.
struct WorkingColumns {
  std::vector<double> lo;    ///< finite for every column
  std::vector<double> up;    ///< finite for every column
  std::vector<double> cost;  ///< structural costs, slacks 0
};

/// Structural bounds come straight from the problem; slack bounds are the
/// row bounds clipped to the row's achievable activity range, so every
/// column is boxed (clipping cannot cut off a feasible point). When the row
/// bounds lie entirely outside the activity range the LP is infeasible: the
/// slack is pinned to the nearer row bound and phase 1 then proves
/// infeasibility because no pivot can reach it.
[[nodiscard]] WorkingColumns build_working_columns(const LpProblem& lp);

}  // namespace mlsi::opt
