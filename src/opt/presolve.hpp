#pragma once

/// \file presolve.hpp
/// \brief Presolve reductions for MILP models.
///
/// Applied by solve_milp before branch & bound (and available standalone):
///  * **activity-based bound tightening** — for every row, the residual
///    activity range implies tighter bounds on each variable; integer
///    bounds additionally round inward. Iterated to a fixed point.
///  * **row removal** — rows proven redundant by their activity range
///    disappear; rows proven unsatisfiable report infeasibility early.
///  * **fixed-variable detection** — lb == ub after tightening.
///
/// The reductions are sound for the *integer* model (they only ever cut LP
/// relaxation space and never an integer-feasible point), so optima are
/// preserved exactly.

#include "opt/model.hpp"

namespace mlsi::opt {

struct PresolveStats {
  int bound_tightenings = 0;
  int rows_removed = 0;
  int vars_fixed = 0;
  int iterations = 0;
  bool proven_infeasible = false;
};

/// Tightens \p model in place. The model must be linear (run
/// linearize_products first). Returns the applied reductions;
/// stats.proven_infeasible short-circuits the solve.
PresolveStats presolve(Model& model);

}  // namespace mlsi::opt
