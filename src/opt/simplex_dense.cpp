#include "opt/simplex_dense.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/sparse.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

/// The original dense tableau method: T = B^{-1}[A | -I] is materialized in
/// full and updated by Gauss-Jordan pivots. O(m·(n+m)) per pivot and
/// O(m²·(n+m)) per refactorization — superseded by the sparse revised
/// method in simplex.cpp, and kept verbatim (modulo the shared column-prep
/// helpers and the LpBasis snapshot format) as the cross-checking oracle
/// for it. Phase semantics, the Harris-style ratio test and the Bland
/// fallback are the reference behavior the revised solver must reproduce.

namespace mlsi::opt {
namespace {

/// Rates smaller than this cannot block a move: over any step bounded by the
/// variable spans they change a basic value by less than the feasibility
/// tolerance.
constexpr double kRateTol = 1e-9;
/// Pivots are refactorized away after this many eliminations.
constexpr int kRefactorInterval = 384;

/// Dense bounded-variable tableau simplex. One instance per solve.
class DenseSimplex {
 public:
  DenseSimplex(const LpProblem& lp, const LpParams& params)
      : lp_(lp), params_(params) {}

  LpResult run();

 private:
  // --- setup -------------------------------------------------------------
  void build();

  // --- shared pivoting machinery ------------------------------------------
  /// Recomputes every basic value from the nonbasic assignment.
  void refresh_basic_values();
  /// Rebuilds the tableau T = B^{-1}[A|-I] from scratch by Gauss-Jordan on
  /// the recorded basis — the tableau method's substitute for an LU
  /// refactorization. Resets accumulated floating-point drift. When drifted
  /// pivoting has left the recorded basis (near-)singular, dependent
  /// columns are swapped out for slacks (basis repair) and
  /// basis_repaired_ is set: primal feasibility may be lost, so phase 2
  /// must hand control back to phase 1.
  void rebuild_tableau();
  /// Eliminates column `j` using row `r` and updates the reduced-cost row.
  void pivot(int r, int j);

  /// Result of the ratio test for moving column j in direction dir.
  struct Block {
    int leave_row = -1;   ///< -1: bound flip
    double t = 0.0;       ///< step length
    double leave_to = 0.0;
  };
  /// Two-pass (Harris-style) ratio test: finds the minimum blocking ratio,
  /// then among near-minimal rows picks the largest |pivot| (numerical
  /// stability) or, in Bland mode, the smallest basic index (anti-cycling).
  /// phase1 enables the extended bounds of currently infeasible basics.
  [[nodiscard]] Block ratio_test(int j, double dir, bool phase1,
                                 bool bland) const;
  /// Applies a ratio-test outcome: moves values, then pivots or flips.
  void apply_step(int j, double dir, const Block& block);

  [[nodiscard]] double col_span(int j) const { return up_[j] - lo_[j]; }
  [[nodiscard]] bool is_basic(int j) const { return basic_row_[j] >= 0; }

  // --- phase 1 -------------------------------------------------------------
  [[nodiscard]] double infeasibility() const;
  bool phase1_step(bool bland);
  bool run_phase1();

  // --- phase 2 -------------------------------------------------------------
  void init_reduced_costs();
  bool phase2_step(bool bland);
  /// Returns true when the basis had to be repaired mid-phase and phase 1
  /// must re-establish feasibility; status_ is set otherwise.
  bool run_phase2();

  [[nodiscard]] double objective_value() const;

  const LpProblem& lp_;
  const LpParams& params_;

  int m_ = 0;     ///< rows
  int n_ = 0;     ///< structural columns
  int cols_ = 0;  ///< n_ + m_

  // Tableau T = B^{-1} [A | -I], row-major m_ x cols_.
  std::vector<double> tab_;
  double* row(int r) { return tab_.data() + static_cast<std::size_t>(r) * cols_; }
  [[nodiscard]] const double* row(int r) const {
    return tab_.data() + static_cast<std::size_t>(r) * cols_;
  }

  std::vector<double> lo_, up_;  ///< bounds for all cols (slacks clipped)
  std::vector<double> cost_;     ///< phase-2 costs (slack = 0)
  std::vector<double> val_;      ///< current value of every column
  std::vector<int> basis_;       ///< basis_[r] = column basic in row r
  std::vector<int> basic_row_;   ///< col -> row, or -1 when nonbasic
  std::vector<double> dcost_;    ///< pivoted reduced-cost row (phase 2)

  long iters_ = 0;
  long factorizations_ = 0;
  int pivots_since_refactor_ = 0;
  bool basis_repaired_ = false;
  bool used_warm_start_ = false;
  LpStatus status_ = LpStatus::kIterLimit;
};

void DenseSimplex::build() {
  m_ = static_cast<int>(lp_.rows.size());
  n_ = lp_.num_vars;
  cols_ = n_ + m_;
  tab_.assign(static_cast<std::size_t>(m_) * cols_, 0.0);
  WorkingColumns wc = build_working_columns(lp_);
  lo_ = std::move(wc.lo);
  up_ = std::move(wc.up);
  cost_ = std::move(wc.cost);
  val_.assign(static_cast<std::size_t>(cols_), 0.0);
  basis_.resize(static_cast<std::size_t>(m_));
  basic_row_.assign(static_cast<std::size_t>(cols_), -1);

  for (int j = 0; j < n_; ++j) {
    // Nonbasic start: the bound with smaller magnitude (keeps values small).
    val_[j] = std::fabs(lo_[j]) <= std::fabs(up_[j]) ? lo_[j] : up_[j];
  }

  // Initial basis: slacks. With B = -I the tableau is [-A | I].
  for (int r = 0; r < m_; ++r) {
    double* tr = row(r);
    for (const auto& [c, a] : lp_.rows[static_cast<std::size_t>(r)].terms) {
      tr[c] -= a;  // -A
    }
    const int sj = n_ + r;
    tr[sj] = 1.0;
    basis_[static_cast<std::size_t>(r)] = sj;
    basic_row_[sj] = r;
  }

  // Optional warm start: adopt the caller's basis when it is well-formed.
  if (params_.warm_basis != nullptr &&
      static_cast<int>(params_.warm_basis->basic.size()) == m_) {
    std::vector<int> candidate = params_.warm_basis->basic;
    std::vector<char> seen(static_cast<std::size_t>(cols_), 0);
    bool valid = true;
    for (const int c : candidate) {
      if (c < 0 || c >= cols_ || seen[static_cast<std::size_t>(c)] != 0) {
        valid = false;
        break;
      }
      seen[static_cast<std::size_t>(c)] = 1;
    }
    const auto& status = params_.warm_basis->status;
    const bool have_status = static_cast<int>(status.size()) == cols_;
    if (valid) {
      std::fill(basic_row_.begin(), basic_row_.end(), -1);
      basis_ = std::move(candidate);
      for (int r = 0; r < m_; ++r) basic_row_[basis_[static_cast<std::size_t>(r)]] = r;
      // Nonbasic columns sit at the snapshot's bound (clamped into the
      // possibly-changed box), or at their nearer bound without a snapshot.
      for (int j = 0; j < cols_; ++j) {
        if (basic_row_[j] >= 0) continue;
        if (have_status) {
          val_[j] = status[static_cast<std::size_t>(j)] == ColStatus::kAtUpper
                        ? up_[j]
                        : lo_[j];
        } else {
          val_[j] = std::fabs(val_[j] - lo_[j]) <= std::fabs(val_[j] - up_[j])
                        ? lo_[j]
                        : up_[j];
        }
      }
      used_warm_start_ = true;
      rebuild_tableau();
      return;
    }
  }
  refresh_basic_values();
}

void DenseSimplex::refresh_basic_values() {
  // M x = 0 with M = [A | -I]; T = B^{-1} M, so x_B = -sum_nonbasic T_j x_j.
  for (int r = 0; r < m_; ++r) {
    const double* tr = row(r);
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) {
      if (basic_row_[j] >= 0) continue;
      acc += tr[j] * val_[j];
    }
    val_[basis_[static_cast<std::size_t>(r)]] = -acc;
  }
}

void DenseSimplex::rebuild_tableau() {
  pivots_since_refactor_ = 0;
  ++factorizations_;
  // Raw M = [A | -I].
  std::fill(tab_.begin(), tab_.end(), 0.0);
  for (int r = 0; r < m_; ++r) {
    double* tr = row(r);
    for (const auto& [c, a] : lp_.rows[static_cast<std::size_t>(r)].terms) {
      tr[c] += a;
    }
    tr[n_ + r] = -1.0;
  }
  // Gauss-Jordan with partial pivoting, arranging column basis_[k]'s unit
  // entry into row k (rows of T correspond to basis positions).
  for (int k = 0; k < m_; ++k) {
    int c = basis_[static_cast<std::size_t>(k)];
    int best = -1;
    double best_abs = 0.0;
    for (int r = k; r < m_; ++r) {
      const double v = std::fabs(row(r)[c]);
      if (v > best_abs) {
        best_abs = v;
        best = r;
      }
    }
    if (best < 0 || best_abs <= 1e-9) {
      // Basis repair: the recorded column is dependent on the previous
      // pivot columns (drifted pivoting let a numerically-zero element
      // enter the basis). Swap in the best-conditioned nonbasic slack.
      int repl = -1;
      int repl_row = -1;
      double repl_abs = 1e-9;
      for (int cand = n_; cand < cols_; ++cand) {
        if (basic_row_[cand] >= 0) continue;
        for (int r = k; r < m_; ++r) {
          const double v = std::fabs(row(r)[cand]);
          if (v > repl_abs) {
            repl_abs = v;
            repl = cand;
            repl_row = r;
          }
        }
      }
      MLSI_ASSERT(repl >= 0, "basis repair found no replacement column");
      basic_row_[c] = -1;
      val_[c] = std::fabs(val_[c] - lo_[c]) <= std::fabs(val_[c] - up_[c])
                    ? lo_[c]
                    : up_[c];
      basis_[static_cast<std::size_t>(k)] = repl;
      basic_row_[repl] = k;
      c = repl;
      best = repl_row;
      basis_repaired_ = true;
      log_debug("simplex: repaired singular basis at position ", k);
    }
    if (best != k) {
      double* a = row(k);
      double* b = row(best);
      std::swap_ranges(a, a + cols_, b);
    }
    double* pk = row(k);
    const double inv = 1.0 / pk[c];
    for (int cc = 0; cc < cols_; ++cc) pk[cc] *= inv;
    pk[c] = 1.0;
    for (int r = 0; r < m_; ++r) {
      if (r == k) continue;
      double* tr = row(r);
      const double f = tr[c];
      if (f == 0.0) continue;
      for (int cc = 0; cc < cols_; ++cc) tr[cc] -= f * pk[cc];
      tr[c] = 0.0;
    }
  }
  refresh_basic_values();
  if (!dcost_.empty()) init_reduced_costs();
}

void DenseSimplex::pivot(int r, int j) {
  double* pr = row(r);
  const double piv = pr[j];
  MLSI_ASSERT(std::fabs(piv) > 1e-12, "pivot element too small");
  const double inv = 1.0 / piv;
  for (int c = 0; c < cols_; ++c) pr[c] *= inv;
  pr[j] = 1.0;  // exact
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    double* ti = row(i);
    const double f = ti[j];
    if (f == 0.0) continue;
    for (int c = 0; c < cols_; ++c) ti[c] -= f * pr[c];
    ti[j] = 0.0;  // exact
  }
  if (!dcost_.empty()) {
    const double f = dcost_[static_cast<std::size_t>(j)];
    if (f != 0.0) {
      for (int c = 0; c < cols_; ++c) {
        dcost_[static_cast<std::size_t>(c)] -= f * pr[c];
      }
      dcost_[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  const int leaving = basis_[static_cast<std::size_t>(r)];
  basic_row_[leaving] = -1;
  basis_[static_cast<std::size_t>(r)] = j;
  basic_row_[j] = r;
}

DenseSimplex::Block DenseSimplex::ratio_test(int j, double dir, bool phase1,
                                             bool bland) const {
  const double ftol = params_.feas_tol;
  const double t_bound = dir > 0 ? up_[j] - val_[j] : val_[j] - lo_[j];

  // Per-row blocking limit under the move; kInf when the row cannot block.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto row_limit = [&](int r, double* to_out, double* rate_out) {
    const double rate = -dir * row(r)[j];
    *rate_out = rate;
    if (std::fabs(rate) <= kRateTol) return kInf;
    const int b = basis_[static_cast<std::size_t>(r)];
    double limit = kInf;
    double to = 0.0;
    if (phase1 && val_[b] < lo_[b] - ftol) {
      // Infeasible below: blocks only when moving up, at its lower bound.
      if (rate > 0) {
        limit = (lo_[b] - val_[b]) / rate;
        to = lo_[b];
      }
    } else if (phase1 && val_[b] > up_[b] + ftol) {
      if (rate < 0) {
        limit = (up_[b] - val_[b]) / rate;
        to = up_[b];
      }
    } else if (rate > 0) {
      limit = (up_[b] - val_[b]) / rate;
      to = up_[b];
    } else {
      limit = (lo_[b] - val_[b]) / rate;
      to = lo_[b];
    }
    if (limit < 0.0) limit = 0.0;  // degeneracy / tolerance noise
    *to_out = to;
    return limit;
  };

  // Pass 1: minimum ratio over the rows.
  double t_rows = kInf;
  for (int r = 0; r < m_; ++r) {
    double to;
    double rate;
    const double limit = row_limit(r, &to, &rate);
    t_rows = std::min(t_rows, limit);
  }

  Block block;
  if (t_rows >= t_bound - 1e-9) {
    // The entering variable's own bound blocks first: bound flip.
    block.leave_row = -1;
    block.t = t_bound;
    return block;
  }

  // Pass 2: among rows within tolerance of the minimum ratio, prefer the
  // largest |pivot| (Bland mode: the smallest basic index).
  block.t = t_rows;
  double best_metric = -1.0;
  int best_basic = std::numeric_limits<int>::max();
  for (int r = 0; r < m_; ++r) {
    double to;
    double rate;
    const double limit = row_limit(r, &to, &rate);
    if (limit > t_rows + 1e-9) continue;
    const int b = basis_[static_cast<std::size_t>(r)];
    const bool better = bland ? b < best_basic : std::fabs(rate) > best_metric;
    if (better) {
      best_metric = std::fabs(rate);
      best_basic = b;
      block.leave_row = r;
      block.leave_to = to;
    }
  }
  MLSI_ASSERT(block.leave_row >= 0, "ratio test lost its blocking row");
  return block;
}

void DenseSimplex::apply_step(int j, double dir, const Block& block) {
  const double t = block.t;
  if (t != 0.0) {
    for (int r = 0; r < m_; ++r) {
      const double rate = -dir * row(r)[j];
      if (rate != 0.0) val_[basis_[static_cast<std::size_t>(r)]] += rate * t;
    }
    val_[j] += dir * t;
  }
  if (block.leave_row < 0) {
    // Bound flip: snap exactly onto the far bound.
    val_[j] = dir > 0 ? up_[j] : lo_[j];
    return;
  }
  // Snap the leaving variable exactly onto its blocking bound, then pivot.
  val_[basis_[static_cast<std::size_t>(block.leave_row)]] = block.leave_to;
  pivot(block.leave_row, j);
  if (++pivots_since_refactor_ >= kRefactorInterval) {
    rebuild_tableau();
  } else if (pivots_since_refactor_ % 64 == 0) {
    refresh_basic_values();
  }
}

double DenseSimplex::infeasibility() const {
  double sum = 0.0;
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (val_[b] < lo_[b]) {
      sum += lo_[b] - val_[b];
    } else if (val_[b] > up_[b]) {
      sum += val_[b] - up_[b];
    }
  }
  return sum;
}

bool DenseSimplex::phase1_step(bool bland) {
  const double ftol = params_.feas_tol;
  // Gradient of the total infeasibility along each nonbasic direction:
  // g_j = sum_{basic below lo} T[i][j] - sum_{basic above up} T[i][j];
  // moving j by dir changes the infeasibility at rate dir * g_j.
  std::vector<int> below;
  std::vector<int> above;
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (val_[b] < lo_[b] - ftol) {
      below.push_back(r);
    } else if (val_[b] > up_[b] + ftol) {
      above.push_back(r);
    }
  }
  if (below.empty() && above.empty()) return false;  // feasible

  int best_j = -1;
  double best_dir = 0.0;
  double best_score = -ftol;
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j) || col_span(j) < ftol) continue;
    double g = 0.0;
    for (const int r : below) g += row(r)[j];
    for (const int r : above) g -= row(r)[j];
    const bool at_lo = val_[j] <= lo_[j] + ftol;
    const bool at_up = val_[j] >= up_[j] - ftol;
    double dir;
    if (at_lo && !at_up) {
      dir = 1.0;
    } else if (at_up && !at_lo) {
      dir = -1.0;
    } else {
      dir = g < 0 ? 1.0 : -1.0;
    }
    const double score = dir * g;  // d(infeasibility)/dt, want < 0
    if (score < best_score) {
      best_score = score;
      best_j = j;
      best_dir = dir;
      if (bland) break;  // smallest attractive index
    }
  }
  if (best_j < 0) return false;  // stuck: no attractive column

  apply_step(best_j, best_dir,
             ratio_test(best_j, best_dir, /*phase1=*/true, bland));
  return true;
}

bool DenseSimplex::run_phase1() {
  const double inf_tol = params_.feas_tol * static_cast<double>(m_ + 1);
  double last_inf = infeasibility();
  if (last_inf <= inf_tol) return true;
  int stall = 0;
  bool bland = false;
  while (true) {
    if (++iters_ > params_.max_iters || params_.deadline.expired() ||
        params_.stop.stop_requested()) {
      status_ = LpStatus::kIterLimit;
      return false;
    }
    if (!phase1_step(bland)) {
      rebuild_tableau();
      if (infeasibility() <= inf_tol) return true;
      if (!bland) {
        bland = true;  // one exact retry before declaring infeasible
        continue;
      }
      status_ = LpStatus::kInfeasible;
      return false;
    }
    const double inf = infeasibility();
    if (inf <= inf_tol) {
      rebuild_tableau();
      if (infeasibility() <= inf_tol) return true;
      last_inf = infeasibility();
      continue;
    }
    if (inf < last_inf - params_.feas_tol) {
      last_inf = inf;
      stall = 0;
      bland = false;
    } else if (++stall >= params_.stall_limit) {
      bland = true;  // anti-cycling
      stall = 0;
      rebuild_tableau();
    }
  }
}

void DenseSimplex::init_reduced_costs() {
  dcost_.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) dcost_[static_cast<std::size_t>(j)] = cost_[j];
  for (int r = 0; r < m_; ++r) {
    const double cb = cost_[basis_[static_cast<std::size_t>(r)]];
    if (cb == 0.0) continue;
    const double* tr = row(r);
    for (int c = 0; c < cols_; ++c) {
      dcost_[static_cast<std::size_t>(c)] -= cb * tr[c];
    }
  }
  for (int r = 0; r < m_; ++r) {
    dcost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 0.0;
  }
}

bool DenseSimplex::phase2_step(bool bland) {
  const double otol = params_.opt_tol;
  const double ftol = params_.feas_tol;
  int best_j = -1;
  double best_dir = 0.0;
  double best_score = -otol;
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j) || col_span(j) < ftol) continue;
    const double d = dcost_[static_cast<std::size_t>(j)];
    const bool at_lo = val_[j] <= lo_[j] + ftol;
    const bool at_up = val_[j] >= up_[j] - ftol;
    double dir;
    if (at_lo && !at_up) {
      dir = 1.0;
    } else if (at_up && !at_lo) {
      dir = -1.0;
    } else {
      dir = d < 0 ? 1.0 : -1.0;
    }
    const double score = dir * d;  // d(objective)/dt
    if (score < best_score) {
      best_score = score;
      best_j = j;
      best_dir = dir;
      if (bland) break;
    }
  }
  if (best_j < 0) return false;  // optimal

  apply_step(best_j, best_dir,
             ratio_test(best_j, best_dir, /*phase1=*/false, bland));
  return true;
}

double DenseSimplex::objective_value() const {
  double acc = lp_.cost_constant;
  for (int j = 0; j < n_; ++j) acc += cost_[j] * val_[j];
  return acc;
}

bool DenseSimplex::run_phase2() {
  init_reduced_costs();
  double last_obj = objective_value();
  int stall = 0;
  bool bland = false;
  while (true) {
    if (basis_repaired_) {
      // A refactorization repaired the basis; primal feasibility is no
      // longer guaranteed — hand control back to phase 1.
      basis_repaired_ = false;
      return true;
    }
    if (++iters_ > params_.max_iters || params_.deadline.expired() ||
        params_.stop.stop_requested()) {
      status_ = LpStatus::kIterLimit;
      return false;
    }
    if (!phase2_step(bland)) {
      // Confirm optimality against a freshly refactorized tableau: drifted
      // reduced costs must not declare victory (or keep cycling) silently.
      rebuild_tableau();
      if (basis_repaired_) continue;  // handled at the loop head
      if (!phase2_step(bland)) {
        status_ = LpStatus::kOptimal;
        return false;
      }
      continue;
    }
    const double obj = objective_value();
    if (obj < last_obj - params_.opt_tol) {
      last_obj = obj;
      stall = 0;
      bland = false;
    } else if (++stall >= params_.stall_limit) {
      bland = true;
      stall = 0;
      rebuild_tableau();
    }
  }
}

LpResult DenseSimplex::run() {
  build();
  LpResult out;
  bool feasible = run_phase1();
  int restarts = 0;
  while (feasible) {
    basis_repaired_ = false;
    const bool restart = run_phase2();
    if (!restart) break;
    if (++restarts > 5) {
      status_ = LpStatus::kIterLimit;
      feasible = false;
      break;
    }
    feasible = run_phase1();
  }
  if (feasible) {
    if (status_ == LpStatus::kOptimal) {
      refresh_basic_values();
      // Clamp residual tolerance noise into the box before reporting.
      out.x.resize(static_cast<std::size_t>(n_));
      for (int j = 0; j < n_; ++j) {
        out.x[static_cast<std::size_t>(j)] = std::clamp(val_[j], lo_[j], up_[j]);
      }
      out.objective = objective_value();
    }
  }
  out.status = status_;
  out.basis.basic = basis_;
  out.basis.status.resize(static_cast<std::size_t>(cols_));
  for (int j = 0; j < cols_; ++j) {
    if (is_basic(j)) {
      out.basis.status[static_cast<std::size_t>(j)] = ColStatus::kBasic;
    } else {
      out.basis.status[static_cast<std::size_t>(j)] =
          std::fabs(val_[j] - up_[j]) < std::fabs(val_[j] - lo_[j])
              ? ColStatus::kAtUpper
              : ColStatus::kAtLower;
    }
  }
  out.iterations = iters_;
  out.factorizations = factorizations_;
  out.used_warm_start = used_warm_start_;
  return out;
}

}  // namespace

LpResult solve_lp_dense(const LpProblem& lp, const LpParams& params) {
  DenseSimplex solver(lp, params);
  return solver.run();
}

}  // namespace mlsi::opt
