#include "opt/lp_format.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <set>

#include "support/strings.hpp"

namespace mlsi::opt {
namespace {

/// LP-format identifiers: start with a letter, then [A-Za-z0-9_.].
std::string sanitize(const std::string& raw, int id,
                     std::set<std::string>& used, bool& renamed) {
  std::string name;
  for (const char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
        c == '.') {
      name += c;
    } else {
      name += '_';
    }
  }
  if (name.empty() ||
      std::isalpha(static_cast<unsigned char>(name.front())) == 0) {
    name = cat("v", id, "_", name);
  }
  if (name != raw) renamed = true;
  while (!used.insert(name).second) {
    name += cat("_", id);
    renamed = true;
  }
  return name;
}

std::string coeff(double c, bool leading) {
  std::string out;
  if (c < 0) {
    out += leading ? "- " : " - ";
  } else {
    out += leading ? "" : " + ";
  }
  const double mag = std::fabs(c);
  if (mag != 1.0) out += fmt_double(mag, 9) + " ";
  return out;
}

/// Emits a (possibly quadratic) expression without its constant part.
std::string expr_text(const QuadExpr& e,
                      const std::vector<std::string>& names) {
  LinExpr lin = e.lin();
  lin.compress();
  std::string out;
  bool leading = true;
  for (const auto& [id, c] : lin.terms()) {
    out += coeff(c, leading) + names[static_cast<std::size_t>(id)];
    leading = false;
  }
  if (!e.quad().empty()) {
    out += leading ? "[ " : " + [ ";
    bool qlead = true;
    for (const QuadTerm& t : e.quad()) {
      out += coeff(t.coeff, qlead) + names[static_cast<std::size_t>(t.a)] +
             " * " + names[static_cast<std::size_t>(t.b)];
      qlead = false;
    }
    out += " ]";
    leading = false;
  }
  if (leading) out = "0 " + names.front();  // empty expression placeholder
  return out;
}

}  // namespace

std::string write_lp_format(const Model& model) {
  MLSI_ASSERT(model.num_vars() > 0, "cannot export an empty model");
  std::set<std::string> used;
  std::vector<std::string> names;
  bool renamed = false;
  for (int j = 0; j < model.num_vars(); ++j) {
    names.push_back(sanitize(model.var(Var{j}).name, j, used, renamed));
  }

  std::string out = "\\ exported by mlsi::opt (CPLEX LP format)\n";
  if (renamed) {
    out += "\\ note: some variable names were sanitized for the LP charset\n";
  }
  out += model.minimize() ? "Minimize\n obj: " : "Maximize\n obj: ";
  out += expr_text(model.objective(), names);
  const double obj_const = model.objective().lin().constant();
  if (obj_const != 0.0) {
    // LP format has no objective constant; encode via a fixed variable.
    out += cat(obj_const < 0 ? " - " : " + ", fmt_double(std::fabs(obj_const), 9),
               " one__");
  }
  out += "\nSubject To\n";
  int row_id = 0;
  for (const Constraint& c : model.constraints()) {
    const std::string body = expr_text(c.expr, names);
    const double k = c.expr.lin().constant();
    const std::string label =
        c.name.empty() ? cat("c", row_id) : [&] {
          std::set<std::string> scratch;
          bool r = false;
          return sanitize(c.name, row_id, scratch, r);
        }();
    ++row_id;
    const bool has_lo = std::isfinite(c.lo);
    const bool has_hi = std::isfinite(c.hi);
    if (has_lo && has_hi && c.lo == c.hi) {
      out += cat(" ", label, ": ", body, " = ", fmt_double(c.lo - k, 9), "\n");
    } else {
      if (has_hi) {
        out += cat(" ", label, "_u: ", body, " <= ", fmt_double(c.hi - k, 9), "\n");
      }
      if (has_lo) {
        out += cat(" ", label, "_l: ", body, " >= ", fmt_double(c.lo - k, 9), "\n");
      }
    }
  }

  out += "Bounds\n";
  for (int j = 0; j < model.num_vars(); ++j) {
    const VarInfo& v = model.var(Var{j});
    out += cat(" ", fmt_double(v.lb, 9), " <= ", names[static_cast<std::size_t>(j)],
               " <= ", fmt_double(v.ub, 9), "\n");
  }
  if (obj_const != 0.0) out += " one__ = 1\n";

  std::string generals;
  std::string binaries;
  for (int j = 0; j < model.num_vars(); ++j) {
    const VarInfo& v = model.var(Var{j});
    if (v.type == VarType::kBinary) {
      binaries += cat(" ", names[static_cast<std::size_t>(j)], "\n");
    } else if (v.type == VarType::kInteger) {
      generals += cat(" ", names[static_cast<std::size_t>(j)], "\n");
    }
  }
  if (!generals.empty()) out += "Generals\n" + generals;
  if (!binaries.empty()) out += "Binaries\n" + binaries;
  out += "End\n";
  return out;
}

Status save_lp_format(const std::string& path, const Model& model) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::NotFound(cat("cannot open ", path, " for writing"));
  file << write_lp_format(model);
  return file.good() ? Status::Ok()
                     : Status::Internal(cat("short write to ", path));
}

}  // namespace mlsi::opt
