#include "opt/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "support/strings.hpp"

namespace mlsi::opt {

LinExpr& LinExpr::add(Var v, double coeff) {
  MLSI_ASSERT(v.valid(), "LinExpr::add with invalid var");
  if (coeff != 0.0) terms_.emplace_back(v.id, coeff);
  return *this;
}

LinExpr& LinExpr::add_constant(double c) {
  constant_ += c;
  return *this;
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  for (const auto& [id, c] : other.terms_) terms_.emplace_back(id, -c);
  constant_ -= other.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double scale) {
  for (auto& [id, c] : terms_) c *= scale;
  constant_ *= scale;
  return *this;
}

void LinExpr::compress() {
  if (terms_.empty()) return;
  std::sort(terms_.begin(), terms_.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    int id = terms_[i].first;
    double sum = 0.0;
    while (i < terms_.size() && terms_[i].first == id) {
      sum += terms_[i].second;
      ++i;
    }
    if (sum != 0.0) terms_[out++] = {id, sum};
  }
  terms_.resize(out);
}

double LinExpr::evaluate(const std::vector<double>& values) const {
  double acc = constant_;
  for (const auto& [id, c] : terms_) {
    MLSI_ASSERT(id >= 0 && static_cast<std::size_t>(id) < values.size(),
                "LinExpr references a variable outside the assignment");
    acc += c * values[static_cast<std::size_t>(id)];
  }
  return acc;
}

QuadExpr& QuadExpr::add_product(Var a, Var b, double coeff) {
  MLSI_ASSERT(a.valid() && b.valid(), "add_product with invalid var");
  if (coeff != 0.0) quad_.push_back({std::min(a.id, b.id), std::max(a.id, b.id), coeff});
  return *this;
}

QuadExpr& QuadExpr::operator+=(const QuadExpr& other) {
  lin_ += other.lin_;
  quad_.insert(quad_.end(), other.quad_.begin(), other.quad_.end());
  return *this;
}

QuadExpr& QuadExpr::operator*=(double scale) {
  lin_ *= scale;
  for (auto& t : quad_) t.coeff *= scale;
  return *this;
}

double QuadExpr::evaluate(const std::vector<double>& values) const {
  double acc = lin_.evaluate(values);
  for (const auto& t : quad_) {
    acc += t.coeff * values[static_cast<std::size_t>(t.a)] *
           values[static_cast<std::size_t>(t.b)];
  }
  return acc;
}

Var Model::add_var(VarType type, double lb, double ub, std::string name) {
  MLSI_ASSERT(std::isfinite(lb) && std::isfinite(ub),
              cat("variable '", name, "' needs finite bounds"));
  MLSI_ASSERT(lb <= ub, cat("variable '", name, "' has lb > ub"));
  if (type == VarType::kBinary) {
    MLSI_ASSERT(lb >= 0.0 && ub <= 1.0, "binary bounds must be within [0,1]");
  }
  vars_.push_back(VarInfo{type, lb, ub, std::move(name)});
  return Var{static_cast<int>(vars_.size()) - 1};
}

void Model::add_constraint(QuadExpr expr, Sense sense, double rhs,
                           std::string name) {
  const double inf = std::numeric_limits<double>::infinity();
  switch (sense) {
    case Sense::kLe: add_range(std::move(expr), -inf, rhs, std::move(name)); break;
    case Sense::kGe: add_range(std::move(expr), rhs, inf, std::move(name)); break;
    case Sense::kEq: add_range(std::move(expr), rhs, rhs, std::move(name)); break;
  }
}

void Model::add_range(QuadExpr expr, double lo, double hi, std::string name) {
  MLSI_ASSERT(lo <= hi, cat("constraint '", name, "' has lo > hi"));
  constraints_.push_back(Constraint{std::move(expr), lo, hi, std::move(name)});
}

void Model::set_objective(QuadExpr objective, bool minimize) {
  objective_ = std::move(objective);
  minimize_ = minimize;
}

void Model::set_bounds(Var v, double lb, double ub) {
  MLSI_ASSERT(v.valid() && v.id < num_vars(), "set_bounds on unknown var");
  MLSI_ASSERT(lb <= ub, "set_bounds with lb > ub");
  vars_[static_cast<std::size_t>(v.id)].lb = lb;
  vars_[static_cast<std::size_t>(v.id)].ub = ub;
}

void Model::set_branch_priority(Var v, int priority) {
  MLSI_ASSERT(v.valid() && v.id < num_vars(), "unknown var");
  vars_[static_cast<std::size_t>(v.id)].branch_priority = priority;
}

void Model::erase_constraints(const std::vector<char>& keep) {
  MLSI_ASSERT(keep.size() == constraints_.size(),
              "erase_constraints flag count mismatch");
  std::size_t out = 0;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (keep[i] != 0) {
      if (out != i) constraints_[out] = std::move(constraints_[i]);
      ++out;
    }
  }
  constraints_.resize(out);
}

void Model::replace_constraint_expr(int idx, QuadExpr expr) {
  MLSI_ASSERT(idx >= 0 && idx < num_constraints(),
              "replace_constraint_expr index out of range");
  constraints_[static_cast<std::size_t>(idx)].expr = std::move(expr);
}

const VarInfo& Model::var(Var v) const {
  MLSI_ASSERT(v.valid() && v.id < num_vars(), "unknown var");
  return vars_[static_cast<std::size_t>(v.id)];
}

bool Model::is_linear() const {
  if (!objective_.is_linear()) return false;
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [](const Constraint& c) { return c.expr.is_linear(); });
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != vars_.size()) return false;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    const VarInfo& v = vars_[j];
    if (values[j] < v.lb - tol || values[j] > v.ub + tol) return false;
    if (v.is_integral() &&
        std::fabs(values[j] - std::nearbyint(values[j])) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    const double val = c.expr.evaluate(values);
    if (val < c.lo - tol || val > c.hi + tol) return false;
  }
  return true;
}

int linearize_products(Model& model) {
  // Map each distinct (a, b) binary product to one auxiliary variable.
  std::map<std::pair<int, int>, Var> aux;
  const auto substitute = [&](QuadExpr& expr, const std::string& where) {
    if (expr.is_linear()) return QuadExpr{expr};
    LinExpr lin = expr.lin();
    for (const QuadTerm& t : expr.quad()) {
      const Var va{t.a};
      const Var vb{t.b};
      MLSI_ASSERT(model.var(va).type == VarType::kBinary &&
                      model.var(vb).type == VarType::kBinary,
                  cat("non-binary product in ", where,
                      "; only binary products can be linearized"));
      const std::pair<int, int> key{t.a, t.b};
      auto it = aux.find(key);
      if (it == aux.end()) {
        // w = a*b via McCormick; exact for binaries. w itself can stay
        // continuous: the three constraints pin it whenever a and b are
        // integral.
        const Var w = model.add_continuous(
            0.0, 1.0, cat("prod_", t.a, "_", t.b));
        model.add_constraint(LinExpr{w} - LinExpr{va}, Sense::kLe, 0.0,
                             cat("mc1_", t.a, "_", t.b));
        model.add_constraint(LinExpr{w} - LinExpr{vb}, Sense::kLe, 0.0,
                             cat("mc2_", t.a, "_", t.b));
        LinExpr lower{w};
        lower -= LinExpr{va};
        lower -= LinExpr{vb};
        model.add_constraint(lower, Sense::kGe, -1.0,
                             cat("mc3_", t.a, "_", t.b));
        it = aux.emplace(key, w).first;
      }
      lin.add(it->second, t.coeff);
    }
    return QuadExpr{lin};
  };

  // Rewrite objective and all constraints in place. Constraints appended by
  // `substitute` (the McCormick rows) are already linear, so iterating over
  // the original index range is sufficient. Copies guard against the
  // constraints vector reallocating while rows are appended.
  QuadExpr obj = model.objective();
  model.set_objective(substitute(obj, "objective"), model.minimize());
  const int n_before = model.num_constraints();
  for (int i = 0; i < n_before; ++i) {
    Constraint c = model.constraints()[static_cast<std::size_t>(i)];
    if (c.expr.is_linear()) continue;
    model.replace_constraint_expr(
        i, substitute(c.expr, cat("constraint '", c.name, "'")));
  }
  return static_cast<int>(aux.size());
}

}  // namespace mlsi::opt
