#pragma once

/// \file server.hpp
/// \brief Long-running synthesis service: canonicalize -> cache -> solve.
///
/// Request lifecycle (Server::handle, thread-safe):
///
///  1. validate the spec; 2. canonicalize it together with the synthesis
///  options and code version into a CacheKey; 3. answer hits straight from
///  the sharded LRU (sub-millisecond, no solver involved); 4. coalesce
///  concurrent identical misses onto one in-flight solve (every waiter
///  shares the result, re-labeled per request); 5. admit the solve into a
///  bounded queue — a full queue rejects the request instead of buffering
///  unboundedly, and a request whose deadline expired while queued is
///  rejected when a worker picks it up; 6. workers solve through the
///  normal Synthesizer pipeline and commit proven-optimal answers to the
///  cache and the optional persistent store.
///
/// Transport adapters: run_stream() speaks JSONL over std::istream /
/// std::ostream (the daemon's stdin mode and the replay tests);
/// run_socket() listens on a Unix domain socket, one JSONL connection per
/// client thread. Request lines look like
///   {"id": "r1", "case": {<case-file document>}, "time_limit_s": 30}
/// and responses like
///   {"id": "r1", "status": "ok", "cached": true, "coalesced": false,
///    "wall_us": 412.0, "result": {<result_to_json document>}}
/// with "status" one of ok | infeasible | rejected | timeout | error.
///
/// Observability: serve.* counters (requests, hits, misses, coalesced,
/// rejected, rejected_deadline, solves) and queue-wait / end-to-end latency
/// histograms when obs::metrics are enabled; the same numbers are always
/// available via counters() for tools that run with metrics off.

#include <atomic>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/crossbar.hpp"
#include "arch/paths.hpp"
#include "serve/cache.hpp"
#include "serve/canonical.hpp"
#include "support/executor.hpp"
#include "support/queue.hpp"
#include "synth/synthesizer.hpp"

namespace mlsi::serve {

struct ServeOptions {
  /// Engine, reduction, pressure, path and geometry options shared by every
  /// request (folded into the cache key). Per-request deadline overrides
  /// engine_params.deadline.
  synth::SynthesisOptions synth;
  /// Total in-memory entries; 0 disables caching AND coalescing (the
  /// pass-through baseline — admission control still applies).
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  /// Append-only JSONL store; empty disables persistence.
  std::string persist_path;
  /// Solver workers (0 = hardware parallelism).
  int jobs = 0;
  /// Admission bound: solves queued but not yet picked up by a worker.
  std::size_t queue_depth = 64;
  /// Per-request wall budget when the request carries none.
  double default_time_limit_s = 120.0;
  /// Build identifier folded into cache keys and the persistent header.
  std::string code_version = "dev";
};

enum class ServeOutcome { kOk, kInfeasible, kRejected, kTimeout, kError };

[[nodiscard]] std::string_view to_string(ServeOutcome outcome);

struct ServeRequest {
  std::string id;
  synth::ProblemSpec spec;
  double time_limit_s = 0.0;  ///< 0 = server default
};

struct ServeResponse {
  std::string id;
  ServeOutcome outcome = ServeOutcome::kError;
  std::string error;       ///< human-readable detail for rejected/error
  bool cached = false;     ///< answered from the LRU (no solve)
  bool coalesced = false;  ///< shared another request's in-flight solve
  double wall_us = 0.0;    ///< end-to-end handle() latency
  json::Value result;      ///< result_to_json document when outcome == kOk
};

/// Serializes a response to its single JSONL line (without the newline).
[[nodiscard]] json::Value response_to_json(const ServeResponse& response);

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request synchronously; safe to call from any number of
  /// threads concurrently (this is the bench's client entry point).
  [[nodiscard]] ServeResponse handle(const ServeRequest& request);

  /// Parses one JSONL request line and handles it.
  [[nodiscard]] ServeResponse handle_line(const std::string& line);

  /// JSONL loop: one request per input line, one response per output line
  /// (responses may interleave out of order; match by "id"). Returns after
  /// EOF once every in-flight request finished.
  Status run_stream(std::istream& in, std::ostream& out);

  /// Listens on a Unix domain socket at \p path (an existing file is
  /// replaced); every connection gets its own JSONL loop. Blocks until
  /// shutdown(). Returns kInternal if the socket cannot be created.
  Status run_socket(const std::string& path);

  /// Stops accepting work, cancels running solves cooperatively, drains
  /// the queue and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  struct Counters {
    long requests = 0;
    long hits = 0;
    long misses = 0;
    long coalesced = 0;
    long rejected_queue = 0;
    long rejected_deadline = 0;
    long solves = 0;
    long persist_replayed = 0;
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }

 private:
  /// One in-flight solve; concurrent identical requests all wait on it.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ServeOutcome outcome = ServeOutcome::kError;
    std::string error;
    std::shared_ptr<const CachedResult> value;
    // Solve inputs (the first requester's labeling — any waiter's would do).
    synth::ProblemSpec spec;
    CanonicalRequest canon;
    support::Deadline deadline;
    Timer queued_at;
  };

  /// Shared immutable topology + candidate paths per switch size, built on
  /// first use (hits must not re-enumerate paths per request).
  struct Bundle {
    std::unique_ptr<arch::SwitchTopology> topo;
    std::unique_ptr<arch::PathSet> paths;
  };
  const Bundle& bundle_for(int pins_per_side);

  void worker_loop();
  void publish(const std::shared_ptr<Flight>& flight, ServeOutcome outcome,
               std::shared_ptr<const CachedResult> value, std::string error);
  ServeResponse respond(const ServeRequest& request,
                        const CanonicalRequest& canon,
                        const CachedResult& value, Timer t0, bool cached,
                        bool coalesced);

  ServeOptions options_;
  ResultCache cache_;
  PersistentStore store_;
  support::StopSource stop_;
  support::BoundedQueue<std::shared_ptr<Flight>> queue_;
  std::unique_ptr<support::ThreadPool> pool_;

  std::mutex flights_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  std::mutex bundles_mutex_;
  std::map<int, Bundle> bundles_;

  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};

  struct AtomicCounters {
    std::atomic<long> requests{0};
    std::atomic<long> hits{0};
    std::atomic<long> misses{0};
    std::atomic<long> coalesced{0};
    std::atomic<long> rejected_queue{0};
    std::atomic<long> rejected_deadline{0};
    std::atomic<long> solves{0};
    std::atomic<long> persist_replayed{0};
  };
  AtomicCounters counters_;
};

}  // namespace mlsi::serve
