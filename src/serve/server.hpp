#pragma once

/// \file server.hpp
/// \brief Long-running synthesis service: canonicalize -> cache -> solve.
///
/// Request lifecycle (Server::handle, thread-safe):
///
///  1. validate the spec; 2. canonicalize it together with the synthesis
///  options and code version into a CacheKey; 3. answer hits straight from
///  the sharded LRU (sub-millisecond, no solver involved); 4. coalesce
///  concurrent identical misses onto one in-flight solve (every waiter
///  shares the result, re-labeled per request); 5. admit the solve into a
///  bounded queue — a full queue rejects the request instead of buffering
///  unboundedly, and a request whose deadline expired while queued is
///  rejected when a worker picks it up; 6. workers solve through the
///  normal Synthesizer pipeline and commit proven-optimal answers to the
///  cache and the optional persistent store. Proven infeasibility is
///  committed too (a negative entry): a later identical — or relabeled —
///  request replays the proof from the cache instead of re-running the
///  solver to rediscover it. Budget-truncated timeouts are never cached.
///
/// Transport adapters: run_stream() speaks JSONL over std::istream /
/// std::ostream (the daemon's stdin mode and the replay tests);
/// run_socket() listens on a Unix domain socket, one JSONL connection per
/// client thread. Request lines look like
///   {"id": "r1", "case": {<case-file document>}, "time_limit_s": 30}
/// and responses like
///   {"id": "r1", "status": "ok", "cached": true, "coalesced": false,
///    "wall_us": 412.0, "timing": {...}, "result": {<result_to_json doc>}}
/// with "status" one of ok | infeasible | rejected | timeout | error.
///
/// Control commands share the transport: a line {"cmd": "stats", "id": ...}
/// is answered with {"id", "status": "ok", "stats": {...derived numbers...},
/// "metrics": {...Metrics::snapshot()...}} — live introspection without
/// restarting the daemon (this is what tools/mlsi_top polls).
///
/// Request-scoped tracing: every request is stamped with a process-unique
/// sequence number on entry to handle(). The per-stage breakdown
/// (canonicalize, cache probe, queue wait, solve, permute-back) is carried
/// in the response "timing" section; coalesced followers report the
/// leader's solve/queue time plus a "leader_seq" link to the solve they
/// shared. The same stages feed serve.stage.* histograms.
///
/// Observability: serve.* counters (requests, hits, misses, coalesced,
/// rejected, rejected_deadline, solves, timeouts, deadline_blown) and
/// queue-wait / stage / end-to-end latency histograms when obs::metrics
/// are enabled; the same numbers are always available via counters() for
/// tools that run with metrics off. A request that blows its deadline
/// triggers an obs::FlightRecorder dump (when one is configured) so the
/// wedged solve leaves a trail.

#include <atomic>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/crossbar.hpp"
#include "arch/paths.hpp"
#include "serve/cache.hpp"
#include "serve/canonical.hpp"
#include "support/executor.hpp"
#include "support/queue.hpp"
#include "synth/synthesizer.hpp"

namespace mlsi::serve {

struct ServeOptions {
  /// Engine, reduction, pressure, path and geometry options shared by every
  /// request (folded into the cache key). Per-request deadline overrides
  /// engine_params.deadline.
  synth::SynthesisOptions synth;
  /// Total in-memory entries; 0 disables caching AND coalescing (the
  /// pass-through baseline — admission control still applies).
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  /// Append-only JSONL store; empty disables persistence.
  std::string persist_path;
  /// Solver workers (0 = hardware parallelism).
  int jobs = 0;
  /// Admission bound: solves queued but not yet picked up by a worker.
  std::size_t queue_depth = 64;
  /// Per-request wall budget when the request carries none.
  double default_time_limit_s = 120.0;
  /// Build identifier folded into cache keys and the persistent header.
  std::string code_version = "dev";
};

enum class ServeOutcome { kOk, kInfeasible, kRejected, kTimeout, kError };

[[nodiscard]] std::string_view to_string(ServeOutcome outcome);

struct ServeRequest {
  std::string id;
  synth::ProblemSpec spec;
  double time_limit_s = 0.0;  ///< 0 = server default
};

/// Per-stage latency breakdown of one request; serialized as the response
/// "timing" section when seq > 0 (control responses have none). Stages a
/// request never entered stay 0 — a cache hit has no queue/solve time, and
/// a coalesced follower carries the *leader's* queue_wait/solve values
/// (that is the solve it waited on) plus leader_seq as the link.
struct StageTiming {
  long seq = 0;          ///< request id, assigned on entry to handle()
  long leader_seq = -1;  ///< seq of the request whose solve answered this
                         ///< one; -1 when no solve was involved (cache hit,
                         ///< rejection); == seq for a leader
  double canonicalize_us = 0.0;
  double cache_probe_us = 0.0;
  double queue_wait_us = 0.0;
  double solve_us = 0.0;
  double permute_us = 0.0;  ///< rehydration into the request's labeling
  double total_us = 0.0;    ///< == wall_us
};

struct ServeResponse {
  std::string id;
  ServeOutcome outcome = ServeOutcome::kError;
  std::string error;       ///< human-readable detail for rejected/error
  bool cached = false;     ///< answered from the LRU (no solve)
  bool coalesced = false;  ///< shared another request's in-flight solve
  double wall_us = 0.0;    ///< end-to-end handle() latency
  StageTiming timing;      ///< per-stage breakdown (seq == 0 -> omitted)
  json::Value result;      ///< result_to_json document when outcome == kOk
  json::Value control;     ///< control-command payload, spliced into the
                           ///< response line at top level (stats)
};

/// Serializes a response to its single JSONL line (without the newline).
[[nodiscard]] json::Value response_to_json(const ServeResponse& response);

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request synchronously; safe to call from any number of
  /// threads concurrently (this is the bench's client entry point).
  [[nodiscard]] ServeResponse handle(const ServeRequest& request);

  /// Parses one JSONL request line and handles it.
  [[nodiscard]] ServeResponse handle_line(const std::string& line);

  /// JSONL loop: one request per input line, one response per output line
  /// (responses may interleave out of order; match by "id"). Returns after
  /// EOF once every in-flight request finished.
  Status run_stream(std::istream& in, std::ostream& out);

  /// Listens on a Unix domain socket at \p path (an existing file is
  /// replaced); every connection gets its own JSONL loop. Blocks until
  /// shutdown(). Returns kInternal if the socket cannot be created.
  Status run_socket(const std::string& path);

  /// Stops accepting work, cancels running solves cooperatively, drains
  /// the queue and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  /// Graceful counterpart to shutdown(): stops intake (listener, client
  /// connections, new admissions) but lets already-admitted solves FINISH
  /// and publish before the workers are joined — the SIGTERM path, so an
  /// interrupted daemon answers what it accepted and its telemetry covers
  /// the whole session. Idempotent, safe to race with shutdown().
  void drain();

  /// Live introspection document served by the "stats" control command:
  /// uptime, the counters() block, queue depth/capacity, in-flight solves,
  /// cache occupancy, and derived hit_rate / rps. Thread-safe.
  [[nodiscard]] json::Value stats_json() const;

  struct Counters {
    long requests = 0;
    long hits = 0;
    long misses = 0;
    long coalesced = 0;
    long rejected_queue = 0;
    long rejected_deadline = 0;
    long solves = 0;
    long timeouts = 0;  ///< solves that ran but blew their deadline
    long persist_replayed = 0;
    long negative_hits = 0;  ///< hits that replayed an infeasibility proof
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }

 private:
  /// One in-flight solve; concurrent identical requests all wait on it.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ServeOutcome outcome = ServeOutcome::kError;
    std::string error;
    std::shared_ptr<const CachedResult> value;
    // Solve inputs (the first requester's labeling — any waiter's would do).
    synth::ProblemSpec spec;
    CanonicalRequest canon;
    support::Deadline deadline;
    Timer queued_at;
    // Timing facts shared with every waiter (leader and coalesced
    // followers alike); written by the worker before publish(), read only
    // after done == true, so the flight mutex orders them.
    long leader_seq = 0;        ///< seq of the request that enqueued this
    double queue_wait_us = 0.0; ///< admission -> worker pickup
    double solve_us = 0.0;      ///< synthesize() wall time
  };

  /// Shared immutable topology + candidate paths per switch size, built on
  /// first use (hits must not re-enumerate paths per request).
  struct Bundle {
    std::unique_ptr<arch::SwitchTopology> topo;
    std::unique_ptr<arch::PathSet> paths;
  };
  const Bundle& bundle_for(int pins_per_side);

  void worker_loop();
  void publish(const std::shared_ptr<Flight>& flight, ServeOutcome outcome,
               std::shared_ptr<const CachedResult> value, std::string error);
  ServeResponse respond(const ServeRequest& request,
                        const CanonicalRequest& canon,
                        const CachedResult& value, Timer t0, bool cached,
                        bool coalesced, StageTiming timing);
  ServeResponse handle_control(const std::string& cmd, std::string id);
  /// Shared body of shutdown()/drain(); hard decides whether running and
  /// queued solves are cancelled (shutdown) or finished (drain).
  void close_down(bool hard);
  void on_deadline_blown();

  ServeOptions options_;
  ResultCache cache_;
  PersistentStore store_;
  support::StopSource stop_;
  support::BoundedQueue<std::shared_ptr<Flight>> queue_;
  std::unique_ptr<support::ThreadPool> pool_;

  std::mutex flights_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  std::mutex bundles_mutex_;
  std::map<int, Bundle> bundles_;

  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mutex_;  ///< serializes close_down() callers

  /// Open client connections (run_socket); close_down() shuts them down so
  /// blocked reads return and connection threads exit.
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;

  std::atomic<long> next_seq_{0};
  std::atomic<int> in_flight_solves_{0};
  Timer started_;

  struct AtomicCounters {
    std::atomic<long> requests{0};
    std::atomic<long> hits{0};
    std::atomic<long> misses{0};
    std::atomic<long> coalesced{0};
    std::atomic<long> rejected_queue{0};
    std::atomic<long> rejected_deadline{0};
    std::atomic<long> solves{0};
    std::atomic<long> timeouts{0};
    std::atomic<long> persist_replayed{0};
    std::atomic<long> negative_hits{0};
  };
  AtomicCounters counters_;
};

}  // namespace mlsi::serve
