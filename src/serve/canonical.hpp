#pragma once

/// \file canonical.hpp
/// \brief Cache keys for synthesis-as-a-service.
///
/// A key canonicalizes everything that determines a synthesis *answer*:
/// the spec's relabeling-invariant canonical form
/// (synth::ProblemSpec::canonical_form()), the synthesis options that shape
/// the result (engine, valve reduction, pressure mode, path enumeration,
/// crossbar geometry), the canonical-format version and the code version.
/// Two requests with equal keys receive byte-identical answers (modulo
/// per-request timing), no matter how their modules and flows were labeled.
///
/// Deliberately *excluded* from the key: deadlines, job counts and stop
/// tokens (they change how long a solve takes, never what the committed
/// answer is — the cache only ever stores proven-optimal results), and the
/// spec/module names (labels).
///
/// Keys carry both the 64-bit FNV-1a hash (shard + bucket index) and the
/// full canonical text; lookups compare the text, so a hash collision can
/// cost a cache hit but never serve a wrong result.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "synth/spec.hpp"
#include "synth/synthesizer.hpp"

namespace mlsi::serve {

/// Bump on any change to the canonical text layout or to the cached-result
/// serialization; persisted caches from other versions are discarded.
inline constexpr int kCanonicalVersion = 1;

/// FNV-1a 64-bit hash.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

struct CacheKey {
  std::uint64_t hash = 0;
  std::string text;  ///< full canonical serialization (collision guard)

  [[nodiscard]] bool operator==(const CacheKey& o) const {
    return hash == o.hash && text == o.text;
  }
};

/// A request after canonicalization: the key plus the permutations needed
/// to carry a cached (canonically labeled) solution back into the
/// request's own labeling.
struct CanonicalRequest {
  CacheKey key;
  std::vector<int> module_to_canonical;
  std::vector<int> flow_to_canonical;
};

/// Canonicalizes \p spec (must validate()) under the serving options.
/// \p code_version is baked into the key so a persisted cache written by a
/// different build never matches.
[[nodiscard]] CanonicalRequest canonicalize(
    const synth::ProblemSpec& spec, const synth::SynthesisOptions& options,
    std::string_view code_version);

}  // namespace mlsi::serve
