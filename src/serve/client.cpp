#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/strings.hpp"

namespace mlsi::serve {

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      pending_(std::move(other.pending_)) {}

SocketClient& SocketClient::operator=(SocketClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

Result<SocketClient> SocketClient::connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(cat("socket path too long: ", path));
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return Status::NotFound(cat("cannot connect to ", path));
  }
  SocketClient client;
  client.fd_ = fd;
  return client;
}

Status SocketClient::send_line(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  const std::string text = line + "\n";
  std::size_t off = 0;
  while (off < text.size()) {
    const ::ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::Internal("socket write failed");
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> SocketClient::recv_line() {
  if (fd_ < 0) return Status::Internal("not connected");
  for (;;) {
    if (const std::size_t pos = pending_.find('\n');
        pos != std::string::npos) {
      std::string line = pending_.substr(0, pos);
      pending_.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ::ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::Internal("connection closed by server");
    pending_.append(chunk, static_cast<std::size_t>(n));
  }
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

}  // namespace mlsi::serve
