#pragma once

/// \file cache.hpp
/// \brief Canonicalizing LRU result cache with optional JSONL persistence.
///
/// Values are SynthesisResults stored in *canonical* coordinates: binding
/// indexed by canonical module, per-flow (set, path id) indexed by
/// canonical flow. Everything else in a result (segments, valves, states,
/// pressure groups, lengths, objective) names topology entities and is
/// invariant under spec relabeling. to_cached()/to_result() carry a
/// solution between a request's labeling and the canonical one through the
/// CanonicalRequest permutations, so one cached solve answers every
/// relabeled variant of the same problem.
///
/// ResultCache is sharded: key.hash picks a shard, each shard is an
/// independent mutex + LRU list + hash map, so concurrent hits on
/// different shards never contend. Entries are handed out as
/// shared_ptr<const CachedResult> — eviction never invalidates a reader.
///
/// PersistentStore is an append-only JSONL file: one header line carrying
/// the canonical-format and code versions, then one {"key","result"} line
/// per committed entry (the hash is recomputed from the key on load). A
/// header mismatch (new code version) discards the file and starts fresh;
/// a torn final line (crash mid-append) is
/// dropped silently. Load order is file order, so replaying into the LRU
/// preserves recency up to the cache capacity.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/paths.hpp"
#include "serve/canonical.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "synth/result.hpp"

namespace mlsi::serve {

/// A proven synthesis answer in canonical coordinates: either a
/// proven-optimal solution or (infeasible == true) a proof that no
/// contamination-free solution exists for the canonical problem. Negative
/// entries carry no solution payload — only stats (the cost of the original
/// proof, which cost-aware eviction uses) — and are relabeling-invariant
/// like positive ones: infeasibility of the canonical problem is
/// infeasibility of every relabeled variant.
struct CachedResult {
  /// True for a cached infeasibility proof (no solution payload below).
  bool infeasible = false;
  std::vector<int> binding;  ///< canonical module index -> pin vertex id
  /// canonical flow index -> (flow set, candidate path id). Path ids are
  /// stable: path enumeration is deterministic for a topology + options.
  std::vector<std::pair<int, int>> flows;
  int num_sets = 0;
  std::vector<int> used_segments;
  double flow_length_mm = 0.0;
  double objective = 0.0;
  std::vector<int> essential_valves;
  /// valve_states[set] = one char per essential valve ('O'/'C'/'X').
  std::vector<std::string> valve_states;
  std::vector<int> pressure_group;
  int num_pressure_groups = 0;
  synth::EngineStats stats;  ///< stats of the original solve
};

/// Converts a freshly solved result into canonical coordinates.
[[nodiscard]] CachedResult to_cached(const synth::SynthesisResult& result,
                                     const CanonicalRequest& canon);

/// Rehydrates a cached value into the labeling of \p canon's request.
/// \p paths must belong to the request's topology (path ids are looked up).
[[nodiscard]] synth::SynthesisResult to_result(const CachedResult& cached,
                                               const CanonicalRequest& canon,
                                               const arch::PathSet& paths);

/// JSONL round-trip for persistence.
[[nodiscard]] json::Value cached_to_json(const CachedResult& cached);
[[nodiscard]] Result<CachedResult> cached_from_json(const json::Value& doc);

/// Sharded in-memory LRU keyed by canonical text (hash-indexed).
class ResultCache {
 public:
  /// \p capacity 0 disables the cache entirely (every lookup misses and
  /// insert is a no-op — the no-cache baseline); shards are clamped to
  /// [1, 64] and to the capacity.
  ResultCache(std::size_t capacity, int shards);

  /// Returns the entry and promotes it to most-recent, or nullptr. A hash
  /// match with different canonical text counts as a miss.
  [[nodiscard]] std::shared_ptr<const CachedResult> lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry. Past capacity the shard evicts
  /// cost-aware: among the last few entries of the LRU list (the eviction
  /// window) it drops the one whose original solve was cheapest
  /// (stats.runtime_s), so an expensive proof survives a burst of cheap
  /// ones; ties fall back to strict least-recently-used.
  void insert(const CacheKey& key, CachedResult value);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long insertions = 0;
    long evictions = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const CachedResult> value;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    long hits = 0;
    long misses = 0;
    long insertions = 0;
    long evictions = 0;
  };

  Shard& shard_for(std::uint64_t hash) {
    return shards_[hash % shards_.size()];
  }

  std::size_t capacity_;        ///< total, across shards
  std::size_t shard_capacity_;  ///< per shard
  std::vector<Shard> shards_;
};

/// Append-only on-disk JSONL mirror of committed cache entries.
class PersistentStore {
 public:
  ~PersistentStore();

  /// Opens (creating if needed) \p path and replays every stored entry
  /// whose header matches \p code_version into \p sink. A mismatched or
  /// corrupt header discards the file. Returns the number of replayed
  /// entries.
  Result<long> open(const std::string& path, const std::string& code_version,
                    const std::function<void(CacheKey, CachedResult)>& sink);

  /// Appends one entry and flushes. Thread-safe.
  Status append(const CacheKey& key, const CachedResult& value);

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  void close();

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace mlsi::serve
