#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

#include "support/strings.hpp"

namespace mlsi::serve {

using json::Array;
using json::Object;
using json::Value;

CachedResult to_cached(const synth::SynthesisResult& result,
                       const CanonicalRequest& canon) {
  CachedResult c;
  const auto& mp = canon.module_to_canonical;
  const auto& fp = canon.flow_to_canonical;
  c.binding.assign(result.binding.size(), -1);
  for (std::size_t m = 0; m < result.binding.size(); ++m) {
    c.binding[static_cast<std::size_t>(mp[m])] = result.binding[m];
  }
  c.flows.assign(result.routed.size(), {-1, -1});
  for (const synth::RoutedFlow& rf : result.routed) {
    c.flows[static_cast<std::size_t>(fp[static_cast<std::size_t>(rf.flow)])] = {
        rf.set, rf.path.id};
  }
  c.num_sets = result.num_sets;
  c.used_segments = result.used_segments;
  c.flow_length_mm = result.flow_length_mm;
  c.objective = result.objective;
  c.essential_valves = result.essential_valves;
  c.valve_states.reserve(result.valve_states.size());
  for (const auto& per_set : result.valve_states) {
    std::string row;
    row.reserve(per_set.size());
    for (const synth::ValveState s : per_set) row += to_char(s);
    c.valve_states.push_back(std::move(row));
  }
  c.pressure_group = result.pressure_group;
  c.num_pressure_groups = result.num_pressure_groups;
  c.stats = result.stats;
  return c;
}

synth::SynthesisResult to_result(const CachedResult& cached,
                                 const CanonicalRequest& canon,
                                 const arch::PathSet& paths) {
  synth::SynthesisResult r;
  const auto& mp = canon.module_to_canonical;
  const auto& fp = canon.flow_to_canonical;
  r.binding.assign(cached.binding.size(), -1);
  for (std::size_t m = 0; m < cached.binding.size(); ++m) {
    r.binding[m] = cached.binding[static_cast<std::size_t>(mp[m])];
  }
  r.routed.resize(cached.flows.size());
  for (std::size_t f = 0; f < cached.flows.size(); ++f) {
    const auto& [set, path_id] = cached.flows[static_cast<std::size_t>(fp[f])];
    synth::RoutedFlow& rf = r.routed[f];
    rf.flow = static_cast<int>(f);
    rf.set = set;
    rf.path = paths.path(path_id);
  }
  r.num_sets = cached.num_sets;
  r.used_segments = cached.used_segments;
  r.flow_length_mm = cached.flow_length_mm;
  r.objective = cached.objective;
  r.essential_valves = cached.essential_valves;
  r.valve_states.reserve(cached.valve_states.size());
  for (const std::string& row : cached.valve_states) {
    std::vector<synth::ValveState> per_set;
    per_set.reserve(row.size());
    for (const char ch : row) {
      per_set.push_back(static_cast<synth::ValveState>(ch));
    }
    r.valve_states.push_back(std::move(per_set));
  }
  r.pressure_group = cached.pressure_group;
  r.num_pressure_groups = cached.num_pressure_groups;
  r.stats = cached.stats;
  return r;
}

namespace {

Value int_array(const std::vector<int>& v) {
  Array a;
  a.reserve(v.size());
  for (const int x : v) a.emplace_back(x);
  return Value{std::move(a)};
}

Result<std::vector<int>> to_int_vector(const Value* v, std::string_view what) {
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument(cat("missing array '", what, "'"));
  }
  std::vector<int> out;
  out.reserve(v->as_array().size());
  for (const Value& x : v->as_array()) {
    if (!x.is_number()) {
      return Status::InvalidArgument(cat("non-numeric '", what, "'"));
    }
    out.push_back(x.as_int());
  }
  return out;
}

}  // namespace

Value cached_to_json(const CachedResult& cached) {
  Object o;
  if (cached.infeasible) o["infeasible"] = Value{true};
  o["binding"] = int_array(cached.binding);
  Array flows;
  for (const auto& [set, path] : cached.flows) {
    flows.emplace_back(Array{Value{set}, Value{path}});
  }
  o["flows"] = Value{std::move(flows)};
  o["num_sets"] = Value{cached.num_sets};
  o["used_segments"] = int_array(cached.used_segments);
  o["flow_length_mm"] = Value{cached.flow_length_mm};
  o["objective"] = Value{cached.objective};
  o["essential_valves"] = int_array(cached.essential_valves);
  Array states;
  for (const std::string& row : cached.valve_states) states.emplace_back(row);
  o["valve_states"] = Value{std::move(states)};
  o["pressure_group"] = int_array(cached.pressure_group);
  o["num_pressure_groups"] = Value{cached.num_pressure_groups};
  Object stats;
  stats["engine"] = Value{cached.stats.engine};
  stats["runtime_s"] = Value{cached.stats.runtime_s};
  stats["nodes"] = Value{static_cast<double>(cached.stats.nodes)};
  stats["proven_optimal"] = Value{cached.stats.proven_optimal};
  stats["lp_iterations"] =
      Value{static_cast<double>(cached.stats.lp_iterations)};
  stats["lp_factorizations"] =
      Value{static_cast<double>(cached.stats.lp_factorizations)};
  stats["warm_starts"] = Value{static_cast<double>(cached.stats.warm_starts)};
  stats["cold_starts"] = Value{static_cast<double>(cached.stats.cold_starts)};
  stats["cuts_generated"] =
      Value{static_cast<double>(cached.stats.cuts_generated)};
  stats["cuts_applied"] = Value{static_cast<double>(cached.stats.cuts_applied)};
  stats["cuts_dropped"] = Value{static_cast<double>(cached.stats.cuts_dropped)};
  stats["nogoods_recorded"] =
      Value{static_cast<double>(cached.stats.nogoods_recorded)};
  stats["nogood_hits"] =
      Value{static_cast<double>(cached.stats.nogood_hits)};
  stats["restarts"] = Value{static_cast<double>(cached.stats.restarts)};
  o["stats"] = Value{std::move(stats)};
  return Value{std::move(o)};
}

Result<CachedResult> cached_from_json(const Value& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("cached result must be an object");
  }
  CachedResult c;
  c.infeasible = doc.get_bool("infeasible", false);
  auto binding = to_int_vector(doc.find("binding"), "binding");
  if (!binding.ok()) return binding.status();
  c.binding = std::move(*binding);
  const Value* flows = doc.find("flows");
  if (flows == nullptr || !flows->is_array()) {
    return Status::InvalidArgument("missing array 'flows'");
  }
  for (const Value& f : flows->as_array()) {
    if (!f.is_array() || f.as_array().size() != 2) {
      return Status::InvalidArgument("each flow must be a [set, path] pair");
    }
    c.flows.emplace_back(f.as_array()[0].as_int(), f.as_array()[1].as_int());
  }
  c.num_sets = doc.get_int("num_sets", 0);
  auto segments = to_int_vector(doc.find("used_segments"), "used_segments");
  if (!segments.ok()) return segments.status();
  c.used_segments = std::move(*segments);
  c.flow_length_mm = doc.get_number("flow_length_mm", 0.0);
  c.objective = doc.get_number("objective", 0.0);
  auto valves = to_int_vector(doc.find("essential_valves"), "essential_valves");
  if (!valves.ok()) return valves.status();
  c.essential_valves = std::move(*valves);
  if (const Value* states = doc.find("valve_states"); states != nullptr) {
    for (const Value& row : states->as_array()) {
      c.valve_states.push_back(row.as_string());
    }
  }
  auto groups = to_int_vector(doc.find("pressure_group"), "pressure_group");
  if (!groups.ok()) return groups.status();
  c.pressure_group = std::move(*groups);
  c.num_pressure_groups = doc.get_int("num_pressure_groups", 0);
  if (const Value* stats = doc.find("stats"); stats != nullptr) {
    c.stats.engine = stats->get_string("engine", "cached");
    c.stats.runtime_s = stats->get_number("runtime_s", 0.0);
    c.stats.nodes = static_cast<long>(stats->get_number("nodes", 0.0));
    c.stats.proven_optimal = stats->get_bool("proven_optimal", true);
    c.stats.lp_iterations =
        static_cast<long>(stats->get_number("lp_iterations", 0.0));
    c.stats.lp_factorizations =
        static_cast<long>(stats->get_number("lp_factorizations", 0.0));
    c.stats.warm_starts =
        static_cast<long>(stats->get_number("warm_starts", 0.0));
    c.stats.cold_starts =
        static_cast<long>(stats->get_number("cold_starts", 0.0));
    c.stats.cuts_generated =
        static_cast<long>(stats->get_number("cuts_generated", 0.0));
    c.stats.cuts_applied =
        static_cast<long>(stats->get_number("cuts_applied", 0.0));
    c.stats.cuts_dropped =
        static_cast<long>(stats->get_number("cuts_dropped", 0.0));
    c.stats.nogoods_recorded =
        static_cast<long>(stats->get_number("nogoods_recorded", 0.0));
    c.stats.nogood_hits =
        static_cast<long>(stats->get_number("nogood_hits", 0.0));
    c.stats.restarts = static_cast<long>(stats->get_number("restarts", 0.0));
  }
  return c;
}

// --- ResultCache ------------------------------------------------------------

ResultCache::ResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  std::size_t n = static_cast<std::size_t>(std::clamp(shards, 1, 64));
  if (capacity_ > 0) n = std::min(n, capacity_);
  shards_ = std::vector<Shard>(std::max<std::size_t>(n, 1));
  shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shards_.size() - 1) / shards_.size();
}

std::shared_ptr<const CachedResult> ResultCache::lookup(const CacheKey& key) {
  if (capacity_ == 0) return nullptr;
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key.hash);
  if (it == shard.index.end() || !(it->second->key == key)) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->value;
}

void ResultCache::insert(const CacheKey& key, CachedResult value) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key.hash);
  auto shared = std::make_shared<const CachedResult>(std::move(value));
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key.hash); it != shard.index.end()) {
    // Refresh in place (also the rare hash-collision case: latest wins).
    it->second->key = key;
    it->second->value = std::move(shared);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.insertions;
    return;
  }
  shard.lru.push_front(Entry{key, std::move(shared)});
  shard.index[key.hash] = shard.lru.begin();
  ++shard.insertions;
  while (shard.lru.size() > shard_capacity_) {
    // Cost-aware eviction: among the last few LRU entries, drop the one
    // whose original solve was cheapest to recompute; ties (all-zero costs
    // included) keep strict LRU order, back-most first.
    constexpr int kEvictionWindow = 8;
    auto victim = std::prev(shard.lru.end());
    auto it = victim;
    for (int scanned = 1;
         scanned < kEvictionWindow && it != shard.lru.begin(); ++scanned) {
      --it;
      // The head is the entry just inserted (or just refreshed) — it must
      // never be the victim of its own insertion.
      if (it == shard.lru.begin()) break;
      if (it->value->stats.runtime_s <
          victim->value->stats.runtime_s - 1e-12) {
        victim = it;
      }
    }
    shard.index.erase(victim->key.hash);
    shard.lru.erase(victim);
    ++shard.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.insertions += shard.insertions;
    s.evictions += shard.evictions;
    s.entries += shard.lru.size();
  }
  return s;
}

// --- PersistentStore --------------------------------------------------------

namespace {
constexpr int kStoreFormat = 1;
}  // namespace

PersistentStore::~PersistentStore() { close(); }

void PersistentStore::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<long> PersistentStore::open(
    const std::string& path, const std::string& code_version,
    const std::function<void(CacheKey, CachedResult)>& sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) return Status::Internal("store already open");

  long replayed = 0;
  bool keep_existing = false;
  if (std::FILE* in = std::fopen(path.c_str(), "rb"); in != nullptr) {
    std::string line;
    char buf[1 << 16];
    bool first = true;
    while (std::fgets(buf, sizeof buf, in) != nullptr) {
      line = buf;
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      auto doc = json::parse(line);
      if (!doc.ok()) break;  // torn tail (crash mid-append): stop replaying
      if (first) {
        first = false;
        if (doc->get_int("format", -1) != kStoreFormat ||
            doc->get_int("canonical_version", -1) != kCanonicalVersion ||
            doc->get_string("code_version", "") != code_version) {
          break;  // stale store from another build: discard wholesale
        }
        keep_existing = true;
        continue;
      }
      const Value* key = doc->find("key");
      const Value* result = doc->find("result");
      if (key == nullptr || !key->is_string() || result == nullptr) continue;
      auto cached = cached_from_json(*result);
      if (!cached.ok()) continue;
      CacheKey k;
      k.text = key->as_string();
      k.hash = fnv1a64(k.text);
      sink(std::move(k), std::move(*cached));
      ++replayed;
    }
    std::fclose(in);
  }

  file_ = std::fopen(path.c_str(), keep_existing ? "ab" : "wb");
  if (file_ == nullptr) {
    return Status::NotFound(cat("cannot open cache store ", path));
  }
  if (!keep_existing) {
    Object header;
    header["format"] = Value{kStoreFormat};
    header["canonical_version"] = Value{kCanonicalVersion};
    header["code_version"] = Value{code_version};
    const std::string line = Value{std::move(header)}.dump() + "\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
  return replayed;
}

Status PersistentStore::append(const CacheKey& key, const CachedResult& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::Ok();  // persistence not enabled
  Object o;
  o["key"] = Value{key.text};
  o["result"] = cached_to_json(value);
  const std::string line = Value{std::move(o)}.dump() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Internal("cache store append failed");
  }
  std::fflush(file_);
  return Status::Ok();
}

}  // namespace mlsi::serve
