#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "io/case_io.hpp"
#include "obs/flight_rec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"

namespace mlsi::serve {

using json::Object;
using json::Value;

namespace {

void count(const char* name, long delta = 1) {
  if (obs::metrics_enabled()) obs::metrics().counter(name).add(delta);
}

void observe_latency_us(const char* name, double us) {
  if (!obs::metrics_enabled()) return;
  obs::metrics()
      .histogram(name, {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
                        50000, 100000, 250000, 1000000, 5000000})
      .observe(us);
}

void set_gauge(const char* name, double v) {
  if (obs::metrics_enabled()) obs::metrics().gauge(name).set(v);
}

double elapsed_us(const Timer& t) { return t.seconds() * 1e6; }

}  // namespace

std::string_view to_string(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kInfeasible: return "infeasible";
    case ServeOutcome::kRejected: return "rejected";
    case ServeOutcome::kTimeout: return "timeout";
    case ServeOutcome::kError: return "error";
  }
  return "?";
}

Value response_to_json(const ServeResponse& response) {
  Object o;
  o["id"] = Value{response.id};
  o["status"] = Value{std::string(to_string(response.outcome))};
  if (!response.error.empty()) o["error"] = Value{response.error};
  // Control responses (stats) splice their payload at top level and skip
  // the request-shaped fields entirely.
  if (response.control.is_object()) {
    for (const auto& [key, value] : response.control.as_object()) {
      o[key] = value;
    }
    return Value{std::move(o)};
  }
  o["cached"] = Value{response.cached};
  o["coalesced"] = Value{response.coalesced};
  o["wall_us"] = Value{response.wall_us};
  if (response.timing.seq > 0) {
    const StageTiming& t = response.timing;
    Object timing;
    timing["seq"] = Value{static_cast<double>(t.seq)};
    if (t.leader_seq >= 0) {
      timing["leader_seq"] = Value{static_cast<double>(t.leader_seq)};
    }
    timing["canonicalize_us"] = Value{t.canonicalize_us};
    timing["cache_probe_us"] = Value{t.cache_probe_us};
    timing["queue_wait_us"] = Value{t.queue_wait_us};
    timing["solve_us"] = Value{t.solve_us};
    timing["permute_us"] = Value{t.permute_us};
    timing["total_us"] = Value{t.total_us};
    o["timing"] = Value{std::move(timing)};
  }
  if (response.outcome == ServeOutcome::kOk) o["result"] = response.result;
  return Value{std::move(o)};
}

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      queue_(options_.queue_depth) {
  if (!options_.persist_path.empty()) {
    auto replayed = store_.open(
        options_.persist_path, options_.code_version,
        [this](CacheKey key, CachedResult value) {
          cache_.insert(key, std::move(value));
        });
    if (replayed.ok()) {
      counters_.persist_replayed.store(*replayed, std::memory_order_relaxed);
      count("serve.persist_replayed", *replayed);
    }
  }
  const int jobs = support::ThreadPool::resolve_jobs(options_.jobs);
  pool_ = std::make_unique<support::ThreadPool>(jobs);
  for (int i = 0; i < jobs; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() { close_down(/*hard=*/true); }

void Server::drain() { close_down(/*hard=*/false); }

void Server::close_down(bool hard) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  stopping_.store(true, std::memory_order_relaxed);
  if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks accept()
    ::close(fd);
  }
  // hard: cancel running solves cooperatively and make workers reject
  // whatever is still queued. Graceful drain skips both — queue_.close()
  // refuses NEW pushes but items already queued stay poppable
  // (BoundedQueue contract), so every admitted request still gets solved
  // and published before the join below returns.
  if (hard) stop_.request_stop();
  queue_.close();
  pool_.reset();  // joins workers
  {
    // Wake connection threads blocked in read(); they close their own fd.
    // Graceful drain keeps the write half open so a response already being
    // written still reaches its client.
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_) {
      ::shutdown(fd, hard ? SHUT_RDWR : SHUT_RD);
    }
  }
  store_.close();
}

Server::Counters Server::counters() const {
  Counters c;
  c.requests = counters_.requests.load(std::memory_order_relaxed);
  c.hits = counters_.hits.load(std::memory_order_relaxed);
  c.misses = counters_.misses.load(std::memory_order_relaxed);
  c.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
  c.rejected_queue = counters_.rejected_queue.load(std::memory_order_relaxed);
  c.rejected_deadline =
      counters_.rejected_deadline.load(std::memory_order_relaxed);
  c.solves = counters_.solves.load(std::memory_order_relaxed);
  c.timeouts = counters_.timeouts.load(std::memory_order_relaxed);
  c.persist_replayed =
      counters_.persist_replayed.load(std::memory_order_relaxed);
  c.negative_hits = counters_.negative_hits.load(std::memory_order_relaxed);
  return c;
}

json::Value Server::stats_json() const {
  Object o;
  const double uptime_s = started_.seconds();
  o["uptime_s"] = Value{uptime_s};
  const Counters c = counters();
  o["requests"] = Value{static_cast<double>(c.requests)};
  o["hits"] = Value{static_cast<double>(c.hits)};
  o["misses"] = Value{static_cast<double>(c.misses)};
  o["coalesced"] = Value{static_cast<double>(c.coalesced)};
  o["rejected_queue"] = Value{static_cast<double>(c.rejected_queue)};
  o["rejected_deadline"] = Value{static_cast<double>(c.rejected_deadline)};
  o["solves"] = Value{static_cast<double>(c.solves)};
  o["timeouts"] = Value{static_cast<double>(c.timeouts)};
  o["persist_replayed"] = Value{static_cast<double>(c.persist_replayed)};
  o["negative_hits"] = Value{static_cast<double>(c.negative_hits)};
  o["queue_depth"] = Value{static_cast<double>(queue_.size())};
  o["queue_capacity"] = Value{static_cast<double>(queue_.capacity())};
  o["in_flight_solves"] =
      Value{static_cast<double>(in_flight_solves_.load(std::memory_order_relaxed))};
  const ResultCache::Stats cs = cache_.stats();
  o["cache_entries"] = Value{static_cast<double>(cs.entries)};
  o["cache_capacity"] = Value{static_cast<double>(cache_.capacity())};
  o["cache_evictions"] = Value{static_cast<double>(cs.evictions)};
  o["hit_rate"] = Value{c.requests > 0 ? static_cast<double>(c.hits) /
                                             static_cast<double>(c.requests)
                                       : 0.0};
  o["rps"] = Value{uptime_s > 0
                       ? static_cast<double>(c.requests) / uptime_s
                       : 0.0};
  o["code_version"] = Value{options_.code_version};
  return Value{std::move(o)};
}

ServeResponse Server::handle_control(const std::string& cmd, std::string id) {
  ServeResponse resp;
  resp.id = std::move(id);
  if (cmd == "stats") {
    count("serve.stats_requests");
    Object payload;
    payload["stats"] = stats_json();
    if (obs::metrics_enabled()) {
      payload["metrics"] = obs::Metrics::instance().snapshot();
    }
    resp.outcome = ServeOutcome::kOk;
    resp.control = Value{std::move(payload)};
  } else {
    resp.outcome = ServeOutcome::kError;
    resp.error = cat("unknown control command '", cmd, "'");
  }
  return resp;
}

const Server::Bundle& Server::bundle_for(int pins_per_side) {
  std::lock_guard<std::mutex> lock(bundles_mutex_);
  Bundle& b = bundles_[pins_per_side];
  if (b.topo == nullptr) {
    b.topo = std::make_unique<arch::SwitchTopology>(
        arch::make_crossbar(pins_per_side, options_.synth.geometry));
    b.paths = std::make_unique<arch::PathSet>(
        arch::enumerate_paths(*b.topo, options_.synth.path_options));
  }
  return b;
}

ServeResponse Server::respond(const ServeRequest& request,
                              const CanonicalRequest& canon,
                              const CachedResult& value, Timer t0, bool cached,
                              bool coalesced, StageTiming timing) {
  ServeResponse resp;
  resp.id = request.id;
  resp.outcome = ServeOutcome::kOk;
  resp.cached = cached;
  resp.coalesced = coalesced;
  const Timer t_permute;
  const Bundle& bundle = bundle_for(request.spec.effective_pins_per_side());
  const synth::SynthesisResult result = to_result(value, canon, *bundle.paths);
  resp.result = io::result_to_json(*bundle.topo, request.spec, result);
  // Per-response documents must not embed the process-global metrics
  // snapshot (it is unbounded and differs between fresh and cached paths —
  // the differential guarantee is on the synthesis payload).
  if (resp.result.is_object()) resp.result.as_object().erase("metrics");
  timing.permute_us = elapsed_us(t_permute);
  observe_latency_us("serve.stage.permute_us", timing.permute_us);
  resp.wall_us = t0.seconds() * 1e6;
  timing.total_us = resp.wall_us;
  resp.timing = timing;
  observe_latency_us("serve.e2e_us", resp.wall_us);
  return resp;
}

ServeResponse Server::handle(const ServeRequest& request) {
  Timer t0;
  // The request id: process-unique, assigned the moment the request enters
  // the pipeline, carried through canonicalization, cache probe,
  // coalescing, solve and permute-back via StageTiming.
  const long seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  StageTiming timing;
  timing.seq = seq;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  count("serve.requests");
  obs::FrScope fr_handle("serve.handle");
  std::optional<obs::TraceSpan> span;
  if (obs::trace_enabled()) span.emplace(cat("serve.req#", seq));

  ServeResponse resp;
  resp.id = request.id;
  const auto finish = [&](ServeOutcome outcome, std::string error) {
    resp.outcome = outcome;
    resp.error = std::move(error);
    resp.wall_us = t0.seconds() * 1e6;
    timing.total_us = resp.wall_us;
    resp.timing = timing;
    observe_latency_us("serve.e2e_us", resp.wall_us);
    return resp;
  };

  if (Status valid = request.spec.validate(); !valid.ok()) {
    return finish(ServeOutcome::kError, valid.to_string());
  }
  // Replays a cached infeasibility proof. The canonical key strips names,
  // so the message is regenerated from the REQUESTING spec (a relabeled
  // duplicate must not see another request's case name).
  const auto replay_negative = [&] {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    counters_.negative_hits.fetch_add(1, std::memory_order_relaxed);
    count("serve.hits");
    count("serve.cache.negative_hits");
    resp.cached = true;
    return finish(
        ServeOutcome::kInfeasible,
        cat("no contamination-free solution for '", request.spec.name,
            "' with ", synth::to_string(request.spec.policy),
            " binding (cached infeasibility proof)"));
  };
  Timer t_stage;
  const CanonicalRequest canon =
      canonicalize(request.spec, options_.synth, options_.code_version);
  timing.canonicalize_us = elapsed_us(t_stage);
  observe_latency_us("serve.stage.canonicalize_us", timing.canonicalize_us);

  t_stage = Timer{};
  auto hit = cache_.lookup(canon.key);
  timing.cache_probe_us = elapsed_us(t_stage);
  observe_latency_us("serve.stage.cache_probe_us", timing.cache_probe_us);
  if (hit) {
    if (hit->infeasible) return replay_negative();
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    count("serve.hits");
    return respond(request, canon, *hit, t0, /*cached=*/true,
                   /*coalesced=*/false, timing);
  }

  // Coalescing rides on the cache: the no-cache baseline (capacity 0) must
  // not share solves either, or it would not be a baseline.
  const bool coalesce = cache_.capacity() > 0;
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    if (coalesce) {
      // A flight may have completed (and committed) between the lookup
      // above and taking this lock; re-check so we never re-solve.
      if (auto racy_hit = cache_.lookup(canon.key)) {
        if (racy_hit->infeasible) return replay_negative();
        counters_.hits.fetch_add(1, std::memory_order_relaxed);
        count("serve.hits");
        return respond(request, canon, *racy_hit, t0, true, false, timing);
      }
      if (const auto it = flights_.find(canon.key.text);
          it != flights_.end()) {
        flight = it->second;
      }
    }
    if (flight == nullptr) {
      flight = std::make_shared<Flight>();
      flight->spec = request.spec;
      flight->canon = canon;
      flight->leader_seq = seq;
      const double limit = request.time_limit_s > 0
                               ? request.time_limit_s
                               : options_.default_time_limit_s;
      flight->deadline = support::Deadline::after(limit);
      if (!queue_.try_push(flight)) {
        counters_.rejected_queue.fetch_add(1, std::memory_order_relaxed);
        count("serve.rejected");
        return finish(ServeOutcome::kRejected,
                      "admission queue full (server overloaded)");
      }
      set_gauge("serve.queue_depth", static_cast<double>(queue_.size()));
      leader = true;
      if (coalesce) flights_[canon.key.text] = flight;
    }
  }
  if (leader) {
    counters_.misses.fetch_add(1, std::memory_order_relaxed);
    count("serve.misses");
  } else {
    counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
    count("serve.coalesced");
    // The follower's link to the solve span it rides on.
    if (obs::trace_enabled()) {
      obs::trace_instant(
          cat("serve.coalesced#", seq, "->", flight->leader_seq));
    }
  }

  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
  }
  // Shared solve facts: the leader and every coalesced follower report the
  // SAME queue-wait/solve times (that is the solve that answered them) and
  // the leader's seq as the link.
  timing.leader_seq = flight->leader_seq;
  timing.queue_wait_us = flight->queue_wait_us;
  timing.solve_us = flight->solve_us;
  if (flight->outcome == ServeOutcome::kOk) {
    // Every waiter rehydrates through its OWN canonical permutations, so a
    // relabeled duplicate gets the answer in its labeling.
    return respond(request, canon, *flight->value, t0, /*cached=*/false,
                   /*coalesced=*/!leader, timing);
  }
  resp.coalesced = !leader;
  return finish(flight->outcome, flight->error);
}

void Server::worker_loop() {
  while (auto item = queue_.pop()) {
    const std::shared_ptr<Flight> flight = std::move(*item);
    set_gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    flight->queue_wait_us = flight->queued_at.seconds() * 1e6;
    observe_latency_us("serve.queue_wait_us", flight->queue_wait_us);
    observe_latency_us("serve.stage.queue_wait_us", flight->queue_wait_us);
    if (stop_.stop_requested()) {
      publish(flight, ServeOutcome::kRejected, nullptr, "server shutting down");
      continue;
    }
    if (flight->deadline.expired()) {
      counters_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
      count("serve.rejected_deadline");
      publish(flight, ServeOutcome::kRejected, nullptr,
              "deadline expired while queued");
      on_deadline_blown();
      continue;
    }
    counters_.solves.fetch_add(1, std::memory_order_relaxed);
    count("serve.solves");
    set_gauge("serve.inflight_solves",
              in_flight_solves_.fetch_add(1, std::memory_order_relaxed) + 1);

    synth::SynthesisOptions opts = options_.synth;
    opts.engine_params.deadline =
        support::Deadline::sooner(opts.engine_params.deadline,
                                  flight->deadline);
    opts.engine_params.stop = stop_.token();
    const Timer t_solve;
    auto solved = [&] {
      obs::FrScope fr_solve("serve.solve");
      std::optional<obs::TraceSpan> solve_span;
      if (obs::trace_enabled()) {
        solve_span.emplace(cat("serve.solve#", flight->leader_seq));
      }
      return synth::synthesize(flight->spec, opts);
    }();
    flight->solve_us = elapsed_us(t_solve);
    observe_latency_us("serve.stage.solve_us", flight->solve_us);
    set_gauge("serve.inflight_solves",
              in_flight_solves_.fetch_sub(1, std::memory_order_relaxed) - 1);
    if (solved.ok()) {
      auto cached = std::make_shared<const CachedResult>(
          to_cached(*solved, flight->canon));
      // Only proven-optimal answers are cacheable: a deadline-limited
      // incumbent depends on the budget, which is deliberately not part of
      // the cache key.
      if (solved->stats.proven_optimal && cache_.capacity() > 0) {
        cache_.insert(flight->canon.key, CachedResult(*cached));
        if (store_.is_open()) {
          if (store_.append(flight->canon.key, *cached).ok()) {
            count("serve.persist_appended");
          }
        }
      }
      publish(flight, ServeOutcome::kOk, std::move(cached), "");
    } else {
      ServeOutcome outcome = ServeOutcome::kError;
      if (solved.status().code() == StatusCode::kInfeasible) {
        outcome = ServeOutcome::kInfeasible;
        // kInfeasible is a PROOF (budget truncation reports kTimeout), so
        // it is as cacheable as a proven optimum: commit a negative entry
        // so duplicates — relabeled ones included — replay the verdict
        // instead of re-proving it. The proof's wall time is its
        // recompute cost for cost-aware eviction.
        if (cache_.capacity() > 0) {
          CachedResult negative;
          negative.infeasible = true;
          negative.stats.engine = "negative";
          negative.stats.proven_optimal = true;
          negative.stats.runtime_s = flight->solve_us / 1e6;
          cache_.insert(flight->canon.key, CachedResult(negative));
          if (store_.is_open()) {
            if (store_.append(flight->canon.key, negative).ok()) {
              count("serve.persist_appended");
            }
          }
        }
      } else if (solved.status().code() == StatusCode::kTimeout) {
        outcome = ServeOutcome::kTimeout;
        counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
        count("serve.timeouts");
      }
      publish(flight, outcome, nullptr, solved.status().message());
      if (outcome == ServeOutcome::kTimeout) on_deadline_blown();
    }
  }
}

void Server::on_deadline_blown() {
  // A blown deadline is exactly the "wedged solve" evidence the flight
  // recorder exists for: dump the recent rings while the trail is fresh.
  // Repeated dumps overwrite — the latest evidence wins.
  obs::FlightRecorder& rec = obs::FlightRecorder::instance();
  if (!obs::flight_recorder_enabled() || rec.dump_path()[0] == '\0') return;
  if (rec.dump().ok()) count("fr.dumps");
}

void Server::publish(const std::shared_ptr<Flight>& flight,
                     ServeOutcome outcome,
                     std::shared_ptr<const CachedResult> value,
                     std::string error) {
  {
    // Deregister first: requests arriving after the commit must go through
    // the cache (or a new flight), never attach to a finished one.
    std::lock_guard<std::mutex> lock(flights_mutex_);
    if (const auto it = flights_.find(flight->canon.key.text);
        it != flights_.end() && it->second == flight) {
      flights_.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->outcome = outcome;
    flight->value = std::move(value);
    flight->error = std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
}

ServeResponse Server::handle_line(const std::string& line) {
  ServeResponse resp;
  auto doc = json::parse(line);
  if (!doc.ok()) {
    resp.error = cat("bad request line: ", doc.status().message());
    return resp;
  }
  ServeRequest req;
  if (const Value* id = doc->find("id"); id != nullptr) {
    req.id = id->is_string() ? id->as_string() : id->dump();
  }
  resp.id = req.id;
  if (const Value* cmd = doc->find("cmd"); cmd != nullptr) {
    return handle_control(cmd->is_string() ? cmd->as_string() : cmd->dump(),
                          std::move(req.id));
  }
  const Value* spec_doc = doc->find("case");
  if (spec_doc == nullptr) {
    resp.error = "request is missing 'case'";
    return resp;
  }
  auto spec = io::spec_from_json(*spec_doc);
  if (!spec.ok()) {
    resp.error = spec.status().to_string();
    return resp;
  }
  req.spec = std::move(*spec);
  req.time_limit_s = doc->get_number("time_limit_s", 0.0);
  return handle(req);
}

Status Server::run_stream(std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  {
    // More frontends than solver workers so the admission queue (not the
    // frontend pool) is what backpressure hits.
    support::ThreadPool frontends(
        support::ThreadPool::resolve_jobs(options_.jobs) * 2);
    std::string line;
    while (!stopping_.load(std::memory_order_relaxed) &&
           std::getline(in, line)) {
      if (line.empty()) continue;
      frontends.submit([this, &out, &out_mutex, line] {
        const ServeResponse resp = handle_line(line);
        const std::string text = response_to_json(resp).dump();
        std::lock_guard<std::mutex> lock(out_mutex);
        out << text << '\n';
        out.flush();
      });
    }
    frontends.wait_idle();
  }
  return Status::Ok();
}

Status Server::run_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument(
        cat("socket path too long: ", path));
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal(cat("cannot listen on ", path));
  }
  listen_fd_.store(fd, std::memory_order_relaxed);

  std::vector<std::thread> connections;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR && !stopping_.load(std::memory_order_relaxed)) {
        continue;  // shutdown-signal handler interrupted us, not a close
      }
      break;  // listen fd closed by shutdown()/drain()
    }
    {
      std::lock_guard<std::mutex> lock(clients_mutex_);
      client_fds_.push_back(client);
    }
    connections.emplace_back([this, client] {
      std::string pending;
      char chunk[4096];
      ssize_t n;
      while ((n = ::read(client, chunk, sizeof chunk)) > 0) {
        pending.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = pending.find('\n')) != std::string::npos) {
          const std::string line = pending.substr(0, pos);
          pending.erase(0, pos + 1);
          if (line.empty()) continue;
          const ServeResponse resp = handle_line(line);
          const std::string text = response_to_json(resp).dump() + "\n";
          std::size_t off = 0;
          while (off < text.size()) {
            const ssize_t w =
                ::write(client, text.data() + off, text.size() - off);
            if (w <= 0) break;
            off += static_cast<std::size_t>(w);
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(clients_mutex_);
        client_fds_.erase(
            std::remove(client_fds_.begin(), client_fds_.end(), client),
            client_fds_.end());
      }
      ::close(client);
    });
  }
  for (std::thread& t : connections) t.join();
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) ::close(lfd);
  return Status::Ok();
}

}  // namespace mlsi::serve
