#pragma once

/// \file client.hpp
/// \brief Minimal JSONL client for the mlsi_serve Unix-socket transport.
///
/// One connection, blocking request/response: send_line() writes one JSONL
/// request, recv_line() reads one response line (the daemon answers each
/// connection's lines in order, so simple clients pair them 1:1). Shared
/// by tools/mlsi_top (stats polling), bench/serve_throughput --socket
/// (load generation) and the SIGTERM drain ctest.

#include <string>

#include "support/status.hpp"

namespace mlsi::serve {

class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient() { close(); }

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Connects to the daemon's Unix socket at \p path.
  [[nodiscard]] static Result<SocketClient> connect(const std::string& path);

  /// Writes \p line plus a trailing newline.
  [[nodiscard]] Status send_line(const std::string& line);

  /// Blocks until one full response line arrives (newline stripped).
  /// kInternal on EOF — the daemon closed the connection.
  [[nodiscard]] Result<std::string> recv_line();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string pending_;  ///< bytes read past the last returned line
};

}  // namespace mlsi::serve
