#include "serve/canonical.hpp"

#include <cstdio>

#include "support/strings.hpp"

namespace mlsi::serve {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::string fmt_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string_view reduction_name(synth::ValveReductionRule r) {
  return r == synth::ValveReductionRule::kNone ? "none" : "paper";
}

std::string_view pressure_name(synth::PressureMode p) {
  switch (p) {
    case synth::PressureMode::kOff: return "off";
    case synth::PressureMode::kGreedy: return "greedy";
    case synth::PressureMode::kIlp: return "ilp";
  }
  return "?";
}

}  // namespace

CanonicalRequest canonicalize(const synth::ProblemSpec& spec,
                              const synth::SynthesisOptions& options,
                              std::string_view code_version) {
  synth::CanonicalForm form = spec.canonical_form();
  CanonicalRequest req;
  req.module_to_canonical = std::move(form.module_to_canonical);
  req.flow_to_canonical = std::move(form.flow_to_canonical);
  req.key.text = cat(
      form.text, ";opt:engine=", options.engine,
      ",red=", reduction_name(options.reduction),
      ",press=", pressure_name(options.pressure),
      ",slack=", fmt_exact(options.path_options.slack_um),
      ",maxpp=", options.path_options.max_paths_per_pair,
      ",geom=", fmt_exact(options.geometry.pitch_um), "/",
      fmt_exact(options.geometry.stub_um), "/",
      fmt_exact(options.geometry.margin_um), ";ver=", kCanonicalVersion, "/",
      code_version);
  req.key.hash = fnv1a64(req.key.text);
  return req;
}

}  // namespace mlsi::serve
