// Spine vs crossbar — why the paper exists.
//
// Routes the mRNA-isolation case (four mutually conflicting eluates, each
// bound for its own collection outlet) on two switch architectures:
//   1. the Columba-style spine baseline, the way prior synthesis tools
//      build switches, and
//   2. this work's contamination-free crossbar (unfixed binding).
// The same flow simulator then floods both chips and counts what actually
// happens to the fluids. The spine leaks and cross-contaminates; the
// crossbar does neither.

#include <cstdio>

#include "cases/cases.hpp"
#include "sim/simulator.hpp"
#include "sim/spine_baseline.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace mlsi;

  const synth::ProblemSpec spec =
      cases::mrna_isolation(synth::BindingPolicy::kUnfixed);
  std::printf("mRNA isolation: %d modules, %d flows, %zu conflicting "
              "reagent pairs\n\n",
              spec.num_modules(), spec.num_flows(),
              spec.conflicting_inlet_modules().size());

  // --- baseline: spine with junctions ---------------------------------------
  for (const auto& [label, schedule] :
       {std::pair{"spine, flows in parallel ", sim::SpineSchedule::kParallel},
        std::pair{"spine, one inlet per step", sim::SpineSchedule::kSequential}}) {
    const sim::SpineBaseline baseline = sim::route_on_spine(spec, schedule);
    const sim::ValidationReport report = sim::validate(baseline.program);
    std::printf("%s : %s\n", label, report.summary().c_str());
    for (std::size_t i = 0; i < std::min<std::size_t>(2, report.errors.size());
         ++i) {
      std::printf("    e.g. %s\n", report.errors[i].c_str());
    }
  }

  // --- this work: crossbar synthesis -----------------------------------------
  synth::SynthesisOptions options;
  options.engine_params.deadline = support::Deadline::after(120.0);
  synth::Synthesizer synthesizer(spec, options);
  auto result = synthesizer.synthesize();
  if (!result.ok()) {
    std::printf("crossbar synthesis failed: %s\n",
                result.status().to_string().c_str());
    return 1;
  }
  const auto outcome = sim::harden(synthesizer.topology(), spec, *result);
  std::printf("crossbar (this work)      : %s\n",
              outcome.report.summary().c_str());
  std::printf("\ncrossbar design: L=%.1f mm, %d valves, %d flow sets, %d "
              "control inlets (reduction: %s)\n",
              result->flow_length_mm, result->num_valves(), result->num_sets,
              result->num_pressure_groups,
              std::string{to_string(outcome.level)}.c_str());
  return outcome.report.ok() ? 0 : 1;
}
