// ChIP assay switch synthesis — the paper's flagship case (Table 4.1 row 1).
//
// An automated chromatin-immunoprecipitation chip routes an antibody-bead
// sample (i10) to mixer M4 while a second sample stream (i11) is
// distributed to mixers M1..M3; the two samples must never touch the same
// channel. This example synthesizes the application-specific switch under
// all three binding policies, prints the paper-style feature table, writes
// an SVG of each design, and cross-checks every design with the flow
// simulator.
//
// Run from the repository root:  ./build/examples/chip_assay
// SVGs appear in ./example_out/.

#include <cstdio>
#include <filesystem>

#include "cases/cases.hpp"
#include "io/report.hpp"
#include "support/strings.hpp"
#include "io/svg.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace mlsi;
  using synth::BindingPolicy;

  std::error_code ec;
  std::filesystem::create_directories("example_out", ec);

  io::TextTable table(
      {"binding", "T(s)", "L(mm)", "#valves", "#sets", "control inlets",
       "simulation"});
  for (const BindingPolicy policy :
       {BindingPolicy::kFixed, BindingPolicy::kClockwise,
        BindingPolicy::kUnfixed}) {
    const synth::ProblemSpec spec = cases::chip_sw1(policy);
    synth::SynthesisOptions options;
    options.engine_params.deadline = support::Deadline::after(60.0);
    synth::Synthesizer synthesizer(spec, options);
    auto result = synthesizer.synthesize();
    if (!result.ok()) {
      table.add_row({std::string{to_string(policy)},
                     result.status().to_string()});
      continue;
    }
    const auto outcome = sim::harden(synthesizer.topology(), spec, *result);
    const std::string svg_path =
        "example_out/chip_" + std::string{to_string(policy)} + ".svg";
    (void)io::write_svg(svg_path,
                        io::render_result(synthesizer.topology(), spec,
                                          *result));
    table.add_row({std::string{to_string(policy)},
                   fmt_double(result->stats.runtime_s, 3),
                   fmt_double(result->flow_length_mm, 1),
                   cat(result->num_valves()), cat(result->num_sets),
                   cat(result->num_pressure_groups),
                   outcome.report.ok() ? "contamination-free" : "FAIL"});
  }
  std::printf("ChIP switch 1 (9 modules, 12-pin), conflicts i10 vs i11:\n\n%s\n",
              table.to_string().c_str());
  std::printf("SVGs written to example_out/chip_<policy>.svg\n");
  return 0;
}
