// Quickstart: synthesize a small contamination-free 8-pin switch.
//
// Two sample inlets feed two detectors each; the two samples' reagents
// conflict, so their routes must never share a channel or junction. The
// example prints the schedule, the routing, the valve plan, and the
// independent flow-simulation verdict.
//
// Build & run:   ./examples/quickstart

#include <cstdio>

#include "sim/simulator.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace mlsi;

  // --- describe the problem --------------------------------------------------
  synth::ProblemSpec spec;
  spec.name = "quickstart";
  spec.pins_per_side = 2;  // 8-pin switch
  spec.modules = {"sampleA", "sampleB", "det1", "det2", "det3", "det4"};
  spec.flows = {
      {0, 2},  // sampleA -> det1
      {0, 3},  // sampleA -> det2
      {1, 4},  // sampleB -> det3
      {1, 5},  // sampleB -> det4
  };
  spec.conflicts = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};  // A-flows vs B-flows
  spec.policy = synth::BindingPolicy::kUnfixed;

  // --- synthesize -------------------------------------------------------------
  synth::Synthesizer synthesizer(spec);
  const auto result = synthesizer.synthesize();
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const arch::SwitchTopology& topo = synthesizer.topology();

  std::printf("Synthesized '%s' on the %s\n", spec.name.c_str(),
              topo.name().c_str());
  std::printf("  flow sets: %d   channel length: %.1f mm   valves: %d   "
              "control inlets: %d\n",
              result->num_sets, result->flow_length_mm, result->num_valves(),
              result->num_pressure_groups);

  std::printf("\nBinding (module -> pin):\n");
  for (int m = 0; m < spec.num_modules(); ++m) {
    std::printf("  %-8s -> %s\n", spec.modules[m].c_str(),
                topo.vertex(result->binding[m]).name.c_str());
  }

  std::printf("\nRouting:\n");
  for (const synth::RoutedFlow& rf : result->routed) {
    const synth::FlowSpec& fs = spec.flows[rf.flow];
    std::printf("  set %d: %-8s -> %-5s via", rf.set,
                spec.modules[fs.src_module].c_str(),
                spec.modules[fs.dst_module].c_str());
    for (const int v : rf.path.vertices) {
      std::printf(" %s", topo.vertex(v).name.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nValve plan (O=open, C=closed, X=don't care), one column per "
              "flow set:\n");
  for (int i = 0; i < result->num_valves(); ++i) {
    std::printf("  %-8s group %d  ",
                topo.segment(result->essential_valves[i]).name.c_str(),
                result->pressure_group[i]);
    for (int s = 0; s < result->num_sets; ++s) {
      std::printf("%c", synth::to_char(result->valve_states[s][i]));
    }
    std::printf("\n");
  }

  // --- independent verification ------------------------------------------------
  const sim::ValidationReport report =
      sim::validate(sim::make_program(topo, spec, *result));
  std::printf("\nFlow simulation: %s\n", report.summary().c_str());
  return report.ok() ? 0 : 2;
}
