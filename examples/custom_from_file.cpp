// Synthesize a switch described in a JSON case file.
//
// Usage:  ./build/examples/custom_from_file [case.json]
//
// Without an argument the example writes a demonstration case file first
// and then synthesizes it, so it is runnable out of the box. The JSON
// schema is documented in src/io/case_io.hpp; any application can drive
// the synthesizer this way without writing C++.

#include <cstdio>

#include "io/case_io.hpp"
#include "io/svg.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesizer.hpp"

namespace {

constexpr const char* kDemoCase = R"({
  "name": "pcr-sample-router",
  "pins_per_side": 2,
  "modules": ["dnaA", "dnaB", "pcr1", "pcr2", "wasteA", "wasteB"],
  "flows": [
    {"from": "dnaA", "to": "pcr1"},
    {"from": "dnaA", "to": "wasteA"},
    {"from": "dnaB", "to": "pcr2"},
    {"from": "dnaB", "to": "wasteB"}
  ],
  "conflicts": [[0, 2]],
  "policy": "unfixed",
  "alpha": 1,
  "beta": 100
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace mlsi;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "demo_case.json";
    const auto parsed = json::parse(kDemoCase);
    if (!parsed.ok() || !json::write_file(path, *parsed).ok()) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return 1;
    }
    std::printf("no case file given; wrote the demo case to %s\n\n",
                path.c_str());
  }

  const auto spec = io::load_spec(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 spec.status().to_string().c_str());
    return 1;
  }
  std::printf("case '%s': %d modules, %d flows, %zu conflicts, %s binding\n",
              spec->name.c_str(), spec->num_modules(), spec->num_flows(),
              spec->conflicts.size(), to_string(spec->policy).data());

  synth::Synthesizer synthesizer(*spec);
  auto result = synthesizer.synthesize();
  if (!result.ok()) {
    std::printf("synthesis: %s\n", result.status().to_string().c_str());
    // Infeasible is a legitimate outcome for over-constrained cases.
    return result.status().code() == StatusCode::kInfeasible ? 0 : 1;
  }
  const auto outcome = sim::harden(synthesizer.topology(), *spec, *result);

  std::printf("synthesized on the %s: L=%.1f mm, %d valves, %d flow sets, "
              "%d control inlets\n",
              synthesizer.topology().name().c_str(), result->flow_length_mm,
              result->num_valves(), result->num_sets,
              result->num_pressure_groups);
  std::printf("flow simulation: %s\n", outcome.report.summary().c_str());

  const std::string svg = path + ".svg";
  const std::string record = path + ".result.json";
  (void)io::write_svg(svg, io::render_result(synthesizer.topology(), *spec,
                                             *result));
  (void)json::write_file(record, io::result_to_json(synthesizer.topology(),
                                                    *spec, *result));
  std::printf("wrote %s and %s\n", svg.c_str(), record.c_str());
  return outcome.report.ok() ? 0 : 1;
}
